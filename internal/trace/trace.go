// Package trace is the serving stack's flight recorder: an always-on,
// allocation-free ring of fixed-size binary events recorded from every
// layer — pool steps, batch fan-out, feedback joins, model swaps,
// checkpoint/flush/WAL activity, retry attempts, breaker transitions,
// admission sheds, and drift alarms. The recorder keeps only the recent
// past (each ring overwrites its oldest events), which is exactly what an
// operator needs when an anomaly fires: the seconds *before* the breaker
// tripped, not an unbounded log.
//
// The hot-path contract mirrors the monitoring layer's (see
// internal/core's recordStep): recording one event costs two atomic
// operations (a CAS acquire and a release store on the ring's spin word),
// one ring-slot write, and zero allocations, so the step path's 0 allocs/op
// survives tracing. The package imports nothing beyond the standard
// library and is imported by every other layer, never the reverse.
package trace

// Kind identifies which layer emitted an event.
type Kind uint8

const (
	// KindStep is one pool step (enter→exit): Series is the track id, Dur
	// the step latency, Arg the model version that served it.
	KindStep Kind = 1 + iota
	// KindBatch is one batch fan-out: Arg is the item count, Dur the
	// whole-batch latency.
	KindBatch
	// KindFeedback is one feedback join: Series is the track id, Arg the
	// step index the truth arrived for.
	KindFeedback
	// KindSwap is one model hot-swap: Arg is the new model version.
	KindSwap
	// KindRecalib is one recalibration attempt (the layer above the swap):
	// Dur is the retrain time, Arg the new version on success.
	KindRecalib
	// KindCheckpoint is one full checkpoint: Arg is the blob size in bytes.
	KindCheckpoint
	// KindFlush is one incremental flush sweep: Arg is the record count.
	KindFlush
	// KindWALAppend is one WAL append: Arg is the record size in bytes.
	KindWALAppend
	// KindRetry is one failed store attempt inside the retry loop: Arg is
	// the attempt number (1-based).
	KindRetry
	// KindBreaker is a circuit-breaker transition: StatusTripped entering
	// degraded mode, StatusRecovered leaving it.
	KindBreaker
	// KindShed is one admission shed: Arg identifies the endpoint
	// (EndpointStep/EndpointSteps/EndpointFeedback), Status the reason.
	KindShed
	// KindDrift is a calibration drift alarm: Series is the track whose
	// feedback crossed the threshold, Arg the total alarm count.
	KindDrift
	// KindAnomaly marks a frozen anomaly snapshot inside the live stream,
	// so a later /debug/flight dump shows when the freeze happened.
	KindAnomaly

	numKinds = iota + 1
)

// kindNames indexes Kind to its wire name (the JSON "kind" field).
var kindNames = [numKinds]string{
	"", "step", "batch", "feedback", "swap", "recalib", "checkpoint",
	"flush", "wal_append", "retry", "breaker", "shed", "drift", "anomaly",
}

// Name returns the kind's wire name ("step", "breaker", ...).
func (k Kind) Name() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Status classifies an event's outcome — the error class, not the error
// text (events are fixed-size binary; the text lives in the logs).
type Status uint8

const (
	// StatusOK is a successful operation.
	StatusOK Status = iota
	// StatusError is a failed operation (store error, step error, ...).
	StatusError
	// StatusNotFound is an operation against an unknown series.
	StatusNotFound
	// StatusDuplicate is an idempotently-dropped duplicate feedback.
	StatusDuplicate
	// StatusQueueFull is an admission shed because the queue was full.
	StatusQueueFull
	// StatusDeadline is an admission shed because the deadline passed
	// while queued.
	StatusDeadline
	// StatusTripped is a breaker transition into degraded mode.
	StatusTripped
	// StatusRecovered is a breaker transition out of degraded mode.
	StatusRecovered
	// StatusAlarm is a raised drift alarm.
	StatusAlarm

	numStatuses = iota
)

// statusNames indexes Status to its wire name (the JSON "status" field).
var statusNames = [numStatuses]string{
	"ok", "error", "not_found", "duplicate", "queue_full", "deadline",
	"tripped", "recovered", "alarm",
}

// Name returns the status's wire name ("ok", "tripped", ...).
func (s Status) Name() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return "unknown"
}

// Endpoint arguments for KindShed events (the Arg field).
const (
	EndpointStep uint64 = 1 + iota
	EndpointSteps
	EndpointFeedback
)

// Event is one fixed-size trace record. All fields are plain integers so a
// ring slot is one 40-byte struct copy — no pointers, nothing for the GC to
// scan, nothing torn once the ring's spin word is honoured.
type Event struct {
	// TS is the event's wall-clock time in nanoseconds since the Unix
	// epoch, derived from one process-wide monotonic clock so merged dumps
	// order correctly even across NTP adjustments.
	TS int64
	// Series is the numeric track id the event concerns, 0 when the event
	// is not about one series (checkpoints, breaker transitions, sheds).
	Series uint64
	// Dur is the operation's duration in nanoseconds, 0 for instant
	// events (transitions, sheds, alarms).
	Dur int64
	// Arg is the kind-specific payload — model version, byte count, item
	// count, attempt number, endpoint id (see the Kind docs).
	Arg uint64
	// Kind and Status classify the event; Shard is the pool shard it
	// happened on (also the ring stripe it was recorded to).
	Kind   Kind
	Status Status
	Shard  uint16
}
