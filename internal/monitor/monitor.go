// Package monitor implements the feedback side of the runtime
// calibration-monitoring subsystem: streaming reliability statistics over
// ground-truth feedback joined to served estimates (see
// core.WrapperPool.TakeFeedback), a calibration-drift detector, request
// latency histograms, and a zero-allocation Prometheus text exposition.
//
// The paper's value proposition is that the wrapper's uncertainties are
// *dependable*; decision-tree QIMs are known to drift into miscalibration
// at region boundaries as traffic shifts (Gerber/Jöckel/Kläs). This package
// is the observability layer that makes such drift visible on live traffic:
// every ground-truth report updates a sliding-window Brier score, a binned
// reliability histogram (predicted uncertainty vs. observed error rate,
// summarised as the expected calibration error), and a Page-Hinkley drift
// detector that raises a per-pool alarm when the per-feedback squared error
// degrades beyond the configured tolerance.
//
// Accumulators are sharded by track id with the same Fibonacci-hash shard
// selection the wrapper pool uses and padded to the same 128-byte stride,
// so concurrent feedback for different tracks almost never contends and the
// shards never false-share. The offline evaluation replays through this
// exact implementation (eval.RunMonitorReplay), so offline and online
// reliability numbers can never diverge by construction.
//
//tauw:seam
package monitor

import (
	"fmt"
	"math/bits"
	"sync"
	"unsafe"

	"github.com/iese-repro/tauw/internal/trace"
)

// DefaultShards is the accumulator shard count used when the configuration
// does not override it — matching core.DefaultShards so a monitor composed
// with a default pool has the same contention profile.
const DefaultShards = 32

// shardPad is the padding stride of the accumulator shards (two cache
// lines, for the same reasons core's shards use it: unaligned backing
// arrays and adjacent-line prefetching).
const shardPad = 128

// fibMul is 2^64/φ, the same Fibonacci-hashing multiplier the wrapper pool
// uses for shard selection, so a track's feedback shard is as cheap to find
// as its pool shard.
const fibMul = 0x9e3779b97f4a7c15

// Config assembles a Monitor.
type Config struct {
	// Shards is the accumulator shard count (rounded up to a power of two;
	// 0 means DefaultShards).
	Shards int
	// Window is the per-shard sliding-window length of the streaming Brier
	// score: the windowed Brier aggregates the most recent Window
	// feedbacks of every shard (0 means DefaultWindow). Because feedback
	// shards by track id, the effective pool-level window is the union of
	// the per-shard windows — at most Shards*Window most recent joins.
	Window int
	// Bins is the number of equal-width predicted-uncertainty bins of the
	// reliability histogram (0 means DefaultBins).
	Bins int
	// Drift configures the Page-Hinkley calibration-drift detector.
	Drift DriftConfig
	// Trace, when set, receives a KindDrift event and an anomaly freeze
	// the moment the detector raises an alarm, capturing the feedbacks
	// that pushed it over the threshold in the flight recorder.
	Trace *trace.Recorder
}

// Defaults for Config's zero values.
const (
	DefaultWindow = 1024
	DefaultBins   = 10
)

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = DefaultShards
	}
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.Bins == 0 {
		c.Bins = DefaultBins
	}
	c.Drift = c.Drift.withDefaults()
	return c
}

// DefaultConfig returns the production defaults.
func DefaultConfig() Config { return Config{}.withDefaults() }

// binStat is one reliability bin: feedbacks whose predicted uncertainty
// fell into the bin's range, how many of them were actually wrong, and the
// sum of the predictions (for the bin's mean forecast).
type binStat struct {
	count  uint64
	errors uint64
	uSum   float64
}

// feedShardState is the payload of one accumulator shard. Everything is
// guarded by mu; feedback for different tracks hashes to different shards,
// so the lock is effectively per-track-group.
type feedShardState struct {
	//tauw:notrace
	mu sync.Mutex
	// Cumulative totals since construction.
	n        uint64
	correct  uint64
	brierSum float64 // Σ (u - err)² over every feedback
	// Reliability bins (cumulative).
	bins []binStat
	// Sliding window of per-feedback squared errors: win is a ring of
	// capacity Window, winSum the running sum over it.
	win      []float64
	winStart int
	winLen   int
	winSum   float64
}

// feedShard pads the accumulator to the shard stride (the trackShard
// pattern; TestShardPadding pins it).
//
//tauw:pad=128
type feedShard struct {
	feedShardState
	_ [shardPad - unsafe.Sizeof(feedShardState{})%shardPad]byte
}

// Monitor is the runtime calibration monitor. It is safe for concurrent
// use; the hot Observe path takes exactly one shard lock plus the drift
// detector's and allocates nothing.
type Monitor struct {
	cfg    Config
	shards []feedShard
	// shardShift is 64 - log2(len(shards)), as in the wrapper pool.
	shardShift uint8
	drift      pageHinkley
}

// New creates a monitor.
func New(cfg Config) (*Monitor, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("monitor: shard count %d must be >= 0", cfg.Shards)
	}
	if cfg.Window < 0 {
		return nil, fmt.Errorf("monitor: window %d must be >= 0", cfg.Window)
	}
	if cfg.Bins < 0 {
		return nil, fmt.Errorf("monitor: bins %d must be >= 0", cfg.Bins)
	}
	if err := cfg.Drift.validate(); err != nil {
		return nil, err
	}
	nshards := 1
	for nshards < cfg.Shards {
		nshards <<= 1
	}
	cfg.Shards = nshards
	m := &Monitor{
		cfg:        cfg,
		shards:     make([]feedShard, nshards),
		shardShift: uint8(64 - bits.TrailingZeros(uint(nshards))),
		drift:      newPageHinkley(cfg.Drift),
	}
	for i := range m.shards {
		m.shards[i].bins = make([]binStat, cfg.Bins)
		m.shards[i].win = make([]float64, 0, cfg.Window)
	}
	return m, nil
}

// Config returns the (normalised) configuration the monitor was built with.
func (m *Monitor) Config() Config { return m.cfg }

// shardFor selects the accumulator shard of a track id — the same
// Fibonacci-hash top-bits extraction the wrapper pool uses.
func (m *Monitor) shardFor(trackID int) *feedShard {
	return &m.shards[(uint64(trackID)*fibMul)>>m.shardShift]
}

// Observe folds one ground-truth feedback into the reliability statistics:
// the estimate served uncertainty for the step, and the fused outcome
// turned out wrong or not. The squared error (u - err)² — the per-sample
// Brier contribution — updates the cumulative and windowed sums, the
// reliability bin the prediction falls into, and the drift detector.
func (m *Monitor) Observe(trackID int, uncertainty float64, wrong bool) error {
	// Negated so NaN (which satisfies no comparison) is rejected too.
	if !(uncertainty >= 0 && uncertainty <= 1) {
		return fmt.Errorf("monitor: uncertainty %g outside [0,1]", uncertainty)
	}
	errv := 0.0
	if wrong {
		errv = 1
	}
	d := uncertainty - errv
	se := d * d

	sh := m.shardFor(trackID)
	sh.mu.Lock()
	sh.n++
	if !wrong {
		sh.correct++
	}
	sh.brierSum += se
	if len(sh.bins) > 0 {
		b := int(uncertainty * float64(len(sh.bins)))
		if b >= len(sh.bins) { // u == 1 lands in the top bin
			b = len(sh.bins) - 1
		}
		sh.bins[b].count++
		sh.bins[b].uSum += uncertainty
		if wrong {
			sh.bins[b].errors++
		}
	}
	if cap(sh.win) > 0 {
		if sh.winLen == cap(sh.win) {
			sh.winSum -= sh.win[sh.winStart]
			sh.win[sh.winStart] = se
			sh.winStart++
			if sh.winStart == cap(sh.win) {
				sh.winStart = 0
			}
		} else {
			sh.win = append(sh.win, se)
			sh.winLen++
		}
		sh.winSum += se
	}
	sh.mu.Unlock()

	if m.drift.observe(se) {
		// Alarm edge: stamp the event and freeze the window that led here.
		// cfg.Trace is nil-safe, so unmonitored deployments pay only the
		// branch inside the returned-false path above.
		m.cfg.Trace.Record(trace.KindDrift, trace.StatusAlarm, 0, uint64(trackID), 0)
		m.cfg.Trace.Freeze("drift_alarm")
	}
	return nil
}

// Bin is one aggregated reliability bin of a Snapshot.
type Bin struct {
	// Lo and Hi are the bin's predicted-uncertainty bounds.
	Lo, Hi float64
	// Count and Errors are the feedbacks binned here and how many of them
	// were wrong.
	Count, Errors uint64
	// MeanPredicted is the mean predicted uncertainty of the bin (0 when
	// empty) and ErrorRate the observed error rate — a calibrated
	// estimator keeps the two close in every bin.
	MeanPredicted, ErrorRate float64
}

// Snapshot is a point-in-time aggregate of the monitor.
type Snapshot struct {
	// Feedbacks is the number of ground-truth reports folded in; Correct
	// counts those whose fused outcome matched the truth.
	Feedbacks, Correct uint64
	// Brier is the cumulative mean squared error between predicted
	// uncertainty and the error indicator (0 when no feedback yet).
	Brier float64
	// WindowedBrier is the same score over the sliding windows
	// (WindowCount recent feedbacks).
	WindowedBrier float64
	WindowCount   int
	// ECE is the expected calibration error of the reliability bins:
	// Σ (count/total)·|mean predicted - observed error rate|.
	ECE float64
	// Bins is the aggregated reliability histogram.
	Bins []Bin
	// Drift is the drift detector's state.
	Drift DriftStatus
}

// feedTotals is the shard-aggregate of the feedback accumulators.
type feedTotals struct {
	n, correct       uint64
	brierSum, winSum float64
	winLen           int
}

// aggregateInto sums the shard accumulators into bins (zeroed first; len
// must be m.cfg.Bins) and returns the scalar totals. Shards are visited in
// index order with plain float64 sums and nothing is allocated, so both
// Snapshot and the exposition scrape build on this one implementation —
// they can never diverge, and two monitors fed the same per-track feedback
// sequence aggregate bit-identically (the property the offline/online
// differential test relies on).
func (m *Monitor) aggregateInto(bins []binStat) feedTotals {
	for b := range bins {
		bins[b] = binStat{}
	}
	var t feedTotals
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		t.n += sh.n
		t.correct += sh.correct
		t.brierSum += sh.brierSum
		t.winSum += sh.winSum
		t.winLen += sh.winLen
		for b := range sh.bins {
			bins[b].count += sh.bins[b].count
			bins[b].errors += sh.bins[b].errors
			bins[b].uSum += sh.bins[b].uSum
		}
		sh.mu.Unlock()
	}
	return t
}

// eceFrom computes the expected calibration error of aggregated bins:
// Σ (count/total)·|mean predicted − observed error rate|.
func eceFrom(bins []binStat, total uint64) float64 {
	var ece float64
	for b := range bins {
		if bins[b].count == 0 {
			continue
		}
		gap := bins[b].uSum/float64(bins[b].count) - float64(bins[b].errors)/float64(bins[b].count)
		if gap < 0 {
			gap = -gap
		}
		ece += float64(bins[b].count) / float64(total) * gap
	}
	return ece
}

// Snapshot aggregates the shard accumulators (see aggregateInto).
func (m *Monitor) Snapshot() Snapshot {
	bins := make([]binStat, m.cfg.Bins)
	t := m.aggregateInto(bins)
	s := Snapshot{
		Feedbacks:   t.n,
		Correct:     t.correct,
		WindowCount: t.winLen,
		ECE:         eceFrom(bins, t.n),
	}
	if t.n > 0 {
		s.Brier = t.brierSum / float64(t.n)
	}
	if t.winLen > 0 {
		s.WindowedBrier = t.winSum / float64(t.winLen)
	}
	s.Bins = make([]Bin, len(bins))
	width := 1.0 / float64(max(len(bins), 1))
	for b := range bins {
		out := &s.Bins[b]
		out.Lo = float64(b) * width
		out.Hi = float64(b+1) * width
		out.Count = bins[b].count
		out.Errors = bins[b].errors
		if bins[b].count > 0 {
			out.MeanPredicted = bins[b].uSum / float64(bins[b].count)
			out.ErrorRate = float64(bins[b].errors) / float64(bins[b].count)
		}
	}
	s.Drift = m.drift.status()
	return s
}

// DriftAlarmed reports whether a calibration-drift alarm is currently
// active (raised and not yet cleared by ResetDriftAlarm).
func (m *Monitor) DriftAlarmed() bool { return m.drift.alarmed() }

// ResetDriftAlarm clears an active drift alarm after the operator has
// acknowledged it (e.g. recalibrated the QIMs); the alarm counter keeps its
// value.
func (m *Monitor) ResetDriftAlarm() { m.drift.resetAlarm() }
