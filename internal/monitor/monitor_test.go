package monitor

import (
	"math"
	"sync"
	"testing"
	"time"
)

// refStats recomputes the monitor's aggregates from a flat feedback trace —
// the oracle the streaming implementation is checked against.
type refStats struct {
	us    []float64
	wrong []bool
}

func (r *refStats) add(u float64, wrong bool) {
	r.us = append(r.us, u)
	r.wrong = append(r.wrong, wrong)
}

func (r *refStats) brier() float64 {
	var sum float64
	for i, u := range r.us {
		e := 0.0
		if r.wrong[i] {
			e = 1
		}
		sum += (u - e) * (u - e)
	}
	return sum / float64(len(r.us))
}

func (r *refStats) ece(bins int) float64 {
	type agg struct {
		n, errs int
		uSum    float64
	}
	bs := make([]agg, bins)
	for i, u := range r.us {
		b := int(u * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		bs[b].n++
		bs[b].uSum += u
		if r.wrong[i] {
			bs[b].errs++
		}
	}
	var ece float64
	for _, b := range bs {
		if b.n == 0 {
			continue
		}
		ece += float64(b.n) / float64(len(r.us)) * math.Abs(b.uSum/float64(b.n)-float64(b.errs)/float64(b.n))
	}
	return ece
}

func TestMonitorAgainstOracle(t *testing.T) {
	m, err := New(Config{Bins: 10, Window: 4096, Drift: DriftConfig{Disabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	var ref refStats
	// A deterministic synthetic trace: uncertainty levels cycling through
	// the bins, error realised whenever a pseudo-random residue undercuts
	// the predicted uncertainty (a perfectly calibrated long-run stream).
	rng := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 5000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		u := float64(i%100) / 100
		wrong := float64(rng>>40)/float64(1<<24) < u
		track := i % 37
		if err := m.Observe(track, u, wrong); err != nil {
			t.Fatal(err)
		}
		ref.add(u, wrong)
	}
	s := m.Snapshot()
	if s.Feedbacks != 5000 {
		t.Fatalf("feedbacks = %d, want 5000", s.Feedbacks)
	}
	if got, want := s.Brier, ref.brier(); math.Abs(got-want) > 1e-12 {
		t.Errorf("cumulative Brier = %g, want %g", got, want)
	}
	if got, want := s.ECE, ref.ece(10); math.Abs(got-want) > 1e-12 {
		t.Errorf("ECE = %g, want %g", got, want)
	}
	// The window (4096 per shard) has not filled anywhere, so the windowed
	// score equals the cumulative score exactly.
	if s.WindowCount != 5000 {
		t.Errorf("window count = %d, want 5000", s.WindowCount)
	}
	if math.Abs(s.WindowedBrier-s.Brier) > 1e-12 {
		t.Errorf("windowed Brier %g != cumulative %g with unfilled window", s.WindowedBrier, s.Brier)
	}
	var correct uint64
	for _, w := range ref.wrong {
		if !w {
			correct++
		}
	}
	if s.Correct != correct {
		t.Errorf("correct = %d, want %d", s.Correct, correct)
	}
	var binTotal uint64
	for _, b := range s.Bins {
		binTotal += b.Count
		if b.Count > 0 && (b.MeanPredicted < b.Lo-1e-9 || b.MeanPredicted > b.Hi+1e-9) {
			t.Errorf("bin [%g,%g) mean predicted %g outside its bounds", b.Lo, b.Hi, b.MeanPredicted)
		}
	}
	if binTotal != s.Feedbacks {
		t.Errorf("bin counts sum to %d, want %d", binTotal, s.Feedbacks)
	}
}

func TestMonitorWindowSlides(t *testing.T) {
	// One shard so the window semantics are exact: after 40 feedbacks into
	// a window of 16, only the last 16 squared errors remain.
	m, err := New(Config{Shards: 1, Window: 16, Bins: 4, Drift: DriftConfig{Disabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	var tail []float64
	for i := 0; i < 40; i++ {
		u := float64(i) / 40
		wrong := i%3 == 0
		if err := m.Observe(i, u, wrong); err != nil {
			t.Fatal(err)
		}
		e := 0.0
		if wrong {
			e = 1
		}
		tail = append(tail, (u-e)*(u-e))
	}
	var want float64
	for _, se := range tail[len(tail)-16:] {
		want += se
	}
	want /= 16
	s := m.Snapshot()
	if s.WindowCount != 16 {
		t.Fatalf("window count = %d, want 16", s.WindowCount)
	}
	if math.Abs(s.WindowedBrier-want) > 1e-12 {
		t.Errorf("windowed Brier = %g, want %g", s.WindowedBrier, want)
	}
	if s.Feedbacks != 40 {
		t.Errorf("feedbacks = %d, want 40", s.Feedbacks)
	}
}

func TestMonitorRejectsBadUncertainty(t *testing.T) {
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []float64{-0.1, 1.1, math.NaN(), math.Inf(1)} {
		if err := m.Observe(0, u, false); err == nil {
			t.Errorf("Observe(%g) accepted", u)
		}
	}
	if s := m.Snapshot(); s.Feedbacks != 0 {
		t.Errorf("rejected observations were counted: %d", s.Feedbacks)
	}
}

func TestPageHinkleyAlarmsOnDegradation(t *testing.T) {
	m, err := New(Config{Drift: DriftConfig{Delta: 0.01, Lambda: 2, MinSamples: 50}})
	if err != nil {
		t.Fatal(err)
	}
	// Calibrated phase: low uncertainty, always right — squared error 0.01.
	for i := 0; i < 200; i++ {
		if err := m.Observe(i, 0.1, false); err != nil {
			t.Fatal(err)
		}
	}
	if m.DriftAlarmed() {
		t.Fatal("alarm during calibrated phase")
	}
	// Drift phase: the same low uncertainty now systematically wrong —
	// squared error 0.81 per feedback, mean degradation far above delta.
	for i := 0; i < 200 && !m.DriftAlarmed(); i++ {
		if err := m.Observe(i, 0.1, true); err != nil {
			t.Fatal(err)
		}
	}
	if !m.DriftAlarmed() {
		t.Fatal("no alarm after sustained miscalibration")
	}
	s := m.Snapshot()
	if s.Drift.Alarms < 1 || !s.Drift.Active {
		t.Errorf("drift status = %+v, want >=1 alarm and active", s.Drift)
	}
	m.ResetDriftAlarm()
	if m.DriftAlarmed() {
		t.Error("alarm still active after reset")
	}
	if got := m.Snapshot().Drift.Alarms; got < 1 {
		t.Errorf("alarm counter lost on reset: %d", got)
	}
}

func TestPageHinkleyMinSamplesGate(t *testing.T) {
	m, err := New(Config{Drift: DriftConfig{Delta: 0.001, Lambda: 0.5, MinSamples: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	// Immediately terrible feedback, but fewer samples than the gate.
	for i := 0; i < 999; i++ {
		if err := m.Observe(i, 0, true); err != nil {
			t.Fatal(err)
		}
	}
	if m.DriftAlarmed() {
		t.Error("alarm before MinSamples")
	}
}

func TestLatencyHist(t *testing.T) {
	h := NewLatencyHist()
	durations := []int64{500, 2_000, 30_000, 500_000, 2_000_000_000}
	for _, d := range durations {
		h.Observe(dur(d))
	}
	if got := h.Count(); got != uint64(len(durations)) {
		t.Errorf("count = %d, want %d", got, len(durations))
	}
	var wantSum float64
	for _, d := range durations {
		wantSum += float64(d) / 1e9
	}
	if got := h.SumSeconds(); math.Abs(got-wantSum) > 1e-12 {
		t.Errorf("sum = %g, want %g", got, wantSum)
	}
	counts := make([]uint64, len(latBoundsNanos)+1)
	h.bucketCounts(counts)
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != uint64(len(durations)) {
		t.Errorf("bucket counts sum to %d, want %d", total, len(durations))
	}
	// 2s exceeds the last bound (1s): it must land in the +Inf bucket.
	if counts[len(counts)-1] != 1 {
		t.Errorf("+Inf bucket = %d, want 1", counts[len(counts)-1])
	}
	// Negative durations clamp to zero instead of corrupting a bucket.
	h.Observe(dur(-5))
	if got := h.Count(); got != uint64(len(durations))+1 {
		t.Errorf("count after negative = %d", got)
	}
}

// dur converts plain nanoseconds to a time.Duration.
func dur(nanos int64) time.Duration { return time.Duration(nanos) }

func TestMonitorConcurrentObserve(t *testing.T) {
	m, err := New(Config{Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const goroutines, per = 8, 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := m.Observe(g*1000+i%17, float64(i%10)/10, i%4 == 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s := m.Snapshot(); s.Feedbacks != goroutines*per {
		t.Errorf("feedbacks = %d, want %d", s.Feedbacks, goroutines*per)
	}
}
