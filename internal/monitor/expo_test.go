package monitor

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// fakePool is a minimal PoolSource fixture.
type fakePool struct {
	active, shards int
	steps          uint64
	uSum           float64
	outcomes       []struct {
		outcome int
		count   uint64
	}
}

func (p *fakePool) Active() int             { return p.active }
func (p *fakePool) NumShards() int          { return p.shards }
func (p *fakePool) StepCount() uint64       { return p.steps }
func (p *fakePool) UncertaintySum() float64 { return p.uSum }
func (p *fakePool) OutcomeCounts(visit func(int, uint64)) {
	for _, o := range p.outcomes {
		visit(o.outcome, o.count)
	}
}

type fakeGate struct{}

func (fakeGate) EachCount(visit func(string, int)) {
	visit("accept", 12)
	visit("handover", 3)
}

// fakeSwap is a minimal SwapSource fixture.
type fakeSwap struct {
	version, count uint64
	lastSwap       int64
}

func (s *fakeSwap) ModelVersion() uint64       { return s.version }
func (s *fakeSwap) RecalibrationCount() uint64 { return s.count }
func (s *fakeSwap) LastSwapUnixNano() int64    { return s.lastSwap }

func expoFixture(t *testing.T) *Exposition {
	t.Helper()
	m, err := New(Config{Bins: 4, Window: 64, Drift: DriftConfig{Disabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := m.Observe(i, float64(i%4)/4, i%5 == 0); err != nil {
			t.Fatal(err)
		}
	}
	lat := NewLatencyHist()
	for i := 0; i < 10; i++ {
		lat.Observe(time.Duration(i) * 10 * time.Microsecond)
	}
	pool := &fakePool{active: 3, shards: 32, steps: 100, uSum: 4.25}
	pool.outcomes = append(pool.outcomes, struct {
		outcome int
		count   uint64
	}{14, 90}, struct {
		outcome int
		count   uint64
	}{-1, 10})
	return &Exposition{
		Monitor:   m,
		Pool:      pool,
		Gate:      fakeGate{},
		Swap:      &fakeSwap{version: 3, count: 2, lastSwap: 1_500_000_000_000_000_000},
		Latencies: []EndpointLatency{{Name: "step", Hist: lat}},
	}
}

func TestExpositionFormat(t *testing.T) {
	e := expoFixture(t)
	out := string(e.AppendMetrics(nil))

	for _, want := range []string{
		"tauw_active_series 3\n",
		"tauw_pool_shards 32\n",
		"tauw_steps_total 100\n",
		"tauw_step_uncertainty_sum 4.25\n",
		`tauw_steps_outcome_total{outcome="14"} 90` + "\n",
		`tauw_steps_outcome_total{outcome="other"} 10` + "\n",
		"tauw_feedback_total 20\n",
		"tauw_model_version 3\n",
		"tauw_recalibrations_total 2\n",
		"tauw_model_last_swap_timestamp_seconds 1.5e+09\n",
		`tauw_gate_total{countermeasure="accept"} 12` + "\n",
		`tauw_gate_total{countermeasure="handover"} 3` + "\n",
		`tauw_request_duration_seconds_count{endpoint="step"} 10` + "\n",
		`le="+Inf"`,
		"# TYPE tauw_brier_windowed gauge\n",
		"# TYPE tauw_request_duration_seconds histogram\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}

	// Every sample line must parse as "name{labels} value" with a numeric
	// value, and every metric family must carry exactly one TYPE line.
	types := map[string]int{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			types[strings.Fields(line)[2]]++
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
			continue
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Errorf("non-numeric value in %q", line)
		}
	}
	for name, n := range types {
		if n != 1 {
			t.Errorf("metric %s has %d TYPE lines", name, n)
		}
	}

	// The cumulative bucket counts must be monotone and end at the count.
	var last uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "tauw_request_duration_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseUint(strings.Fields(line)[1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q", line)
		}
		if v < last {
			t.Errorf("bucket counts not cumulative at %q", line)
		}
		last = v
	}
	if last != 10 {
		t.Errorf("final bucket count = %d, want 10", last)
	}
}

func TestExpositionSteadyStateAllocs(t *testing.T) {
	e := expoFixture(t)
	buf := e.AppendMetrics(nil) // warm-up sizes the scratch and the buffer
	allocs := testing.AllocsPerRun(50, func() {
		buf = e.AppendMetrics(buf[:0])
	})
	if allocs > 0 {
		t.Errorf("steady-state scrape allocates %.1f times, want 0", allocs)
	}
}

func TestExpositionMatchesSnapshot(t *testing.T) {
	e := expoFixture(t)
	out := string(e.AppendMetrics(nil))
	s := e.Monitor.Snapshot()
	for name, want := range map[string]float64{
		"tauw_brier_cumulative":   s.Brier,
		"tauw_brier_windowed":     s.WindowedBrier,
		"tauw_ece":                s.ECE,
		"tauw_feedback_total":     float64(s.Feedbacks),
		"tauw_brier_window_count": float64(s.WindowCount),
	} {
		got, ok := sampleValue(out, name)
		if !ok {
			t.Errorf("metric %s not found", name)
			continue
		}
		if got != want {
			t.Errorf("%s = %g, exposition says %g", name, want, got)
		}
	}
}

// sampleValue extracts the value of an unlabelled sample line.
func sampleValue(out, name string) (float64, bool) {
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			return v, err == nil
		}
	}
	return 0, false
}
