// state.go is the snapshot/restore surface of the runtime monitor: the
// reliability accumulators, the drift detector, and the per-leaf feedback
// evidence all summarise ground truth that cannot be replayed after a
// restart, so the durability layer checkpoints them alongside the wrapper
// pool's series state. Exactness matters here too — the windowed Brier sum
// is a *running* float sum (adds and evictions in arrival order), so the
// export carries the sums verbatim instead of recomputing them from the
// window, and a restored monitor aggregates bit-identically to the one
// that crashed.
//
// Restore requires the same accumulator geometry (shards, window, bins,
// leaf count) the snapshot was taken under: the per-shard windows cannot
// be re-sharded after the per-track attribution is gone. tauserve
// documents that the monitor flags must not change across a restore.
package monitor

import "fmt"

// BinState is one exported reliability bin of one shard.
type BinState struct {
	Count, Errors uint64
	USum          float64
}

// ShardState is the exported state of one reliability-accumulator shard.
type ShardState struct {
	N, Correct uint64
	BrierSum   float64
	Bins       []BinState
	// Window holds the sliding window of per-feedback squared errors in
	// arrival order; WinSum is the running sum over it, carried verbatim
	// (recomputing it would change its floating-point history).
	Window []float64
	WinSum float64
}

// DriftState is the exported state of the Page-Hinkley detector.
type DriftState struct {
	N      int
	Mean   float64
	MT     float64
	MinMT  float64
	Alarms int
	Active bool
}

// MonitorState is the complete restorable state of a Monitor. Reusable
// across exports: every slice is appended into at its existing capacity.
type MonitorState struct {
	// Shards, Window, and Bins pin the geometry the snapshot was taken
	// under; RestoreState refuses a mismatch.
	Shards, Window, Bins int
	ShardStates          []ShardState
	Drift                DriftState
}

// ExportState captures the monitor's state into st (deep copy, reusing
// st's capacity).
func (m *Monitor) ExportState(st *MonitorState) {
	st.Shards = len(m.shards)
	st.Window = m.cfg.Window
	st.Bins = m.cfg.Bins
	if cap(st.ShardStates) < len(m.shards) {
		st.ShardStates = make([]ShardState, len(m.shards))
	}
	st.ShardStates = st.ShardStates[:len(m.shards)]
	for i := range m.shards {
		sh := &m.shards[i]
		out := &st.ShardStates[i]
		sh.mu.Lock()
		out.N = sh.n
		out.Correct = sh.correct
		out.BrierSum = sh.brierSum
		out.WinSum = sh.winSum
		out.Bins = out.Bins[:0]
		for b := range sh.bins {
			out.Bins = append(out.Bins, BinState{
				Count:  sh.bins[b].count,
				Errors: sh.bins[b].errors,
				USum:   sh.bins[b].uSum,
			})
		}
		out.Window = out.Window[:0]
		for j := 0; j < sh.winLen; j++ {
			out.Window = append(out.Window, sh.win[(sh.winStart+j)%cap(sh.win)])
		}
		sh.mu.Unlock()
	}
	m.drift.exportState(&st.Drift)
}

// RestoreState replaces the monitor's state with st. The monitor must have
// been built with the same shard count, window, and bin count the snapshot
// was taken under.
func (m *Monitor) RestoreState(st *MonitorState) error {
	if st.Shards != len(m.shards) {
		return fmt.Errorf("monitor: restore needs %d shards, monitor has %d (shard count must not change across a restore)",
			st.Shards, len(m.shards))
	}
	if st.Window != m.cfg.Window {
		return fmt.Errorf("monitor: restore needs window %d, monitor has %d (window must not change across a restore)",
			st.Window, m.cfg.Window)
	}
	if st.Bins != m.cfg.Bins {
		return fmt.Errorf("monitor: restore needs %d bins, monitor has %d (bin count must not change across a restore)",
			st.Bins, m.cfg.Bins)
	}
	if len(st.ShardStates) != len(m.shards) {
		return fmt.Errorf("monitor: restore carries %d shard states for %d shards", len(st.ShardStates), len(m.shards))
	}
	for i := range st.ShardStates {
		in := &st.ShardStates[i]
		if len(in.Bins) != m.cfg.Bins {
			return fmt.Errorf("monitor: shard %d restore carries %d bins, want %d", i, len(in.Bins), m.cfg.Bins)
		}
		if len(in.Window) > m.cfg.Window {
			return fmt.Errorf("monitor: shard %d restore carries %d window samples, window is %d", i, len(in.Window), m.cfg.Window)
		}
	}
	for i := range m.shards {
		sh := &m.shards[i]
		in := &st.ShardStates[i]
		sh.mu.Lock()
		sh.n = in.N
		sh.correct = in.Correct
		sh.brierSum = in.BrierSum
		for b := range sh.bins {
			sh.bins[b] = binStat{count: in.Bins[b].Count, errors: in.Bins[b].Errors, uSum: in.Bins[b].USum}
		}
		sh.win = append(sh.win[:0], in.Window...)
		sh.winStart = 0
		sh.winLen = len(in.Window)
		sh.winSum = in.WinSum
		sh.mu.Unlock()
	}
	m.drift.restoreState(&st.Drift)
	return nil
}

// exportState captures the detector under its lock.
func (p *pageHinkley) exportState(st *DriftState) {
	p.mu.Lock()
	st.N = p.n
	st.Mean = p.mean
	st.MT = p.mT
	st.MinMT = p.minMT
	st.Alarms = p.alarms
	st.Active = p.active
	p.mu.Unlock()
}

// restoreState replaces the detector's state.
func (p *pageHinkley) restoreState(st *DriftState) {
	p.mu.Lock()
	p.n = st.N
	p.mean = st.Mean
	p.mT = st.MT
	p.minMT = st.MinMT
	p.alarms = st.Alarms
	p.active = st.Active
	p.mu.Unlock()
}

// LeafState is the exported per-leaf feedback evidence of a LeafStats.
type LeafState struct {
	Leaves       []LeafCounts
	Unattributed LeafCounts
}

// ExportState aggregates the leaf accumulators into st (reusing its
// capacity). The aggregate is shard-count independent — restore lands in
// one shard and every reader sums across shards.
func (s *LeafStats) ExportState(st *LeafState) {
	st.Leaves = s.Totals(st.Leaves[:0])
	st.Unattributed = s.Unattributed()
}

// RestoreState folds exported evidence into the accumulators (shard 0;
// placement is unobservable). Additive, so evidence observed before the
// restore survives. The leaf count must match the serving model.
func (s *LeafStats) RestoreState(st *LeafState) error {
	if len(st.Leaves) != s.nLeaves {
		return fmt.Errorf("monitor: restore carries %d leaves, accumulators sized for %d (model shape must not change across a restore)",
			len(st.Leaves), s.nLeaves)
	}
	sh := &s.shards[0]
	for leaf, c := range st.Leaves {
		if c.Count > 0 {
			sh.counters[2*leaf].Add(c.Count)
		}
		if c.Events > 0 {
			sh.counters[2*leaf+1].Add(c.Events)
		}
	}
	if st.Unattributed.Count > 0 {
		sh.counters[2*s.nLeaves].Add(st.Unattributed.Count)
	}
	if st.Unattributed.Events > 0 {
		sh.counters[2*s.nLeaves+1].Add(st.Unattributed.Events)
	}
	return nil
}
