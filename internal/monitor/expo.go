// expo.go is the hand-rolled Prometheus text-format exposition
// (version 0.0.4) of the calibration-monitoring subsystem. A scrape
// aggregates the shard-local counters on demand — the step and feedback hot
// paths never maintain scrape-shaped state — and renders with append-based
// writers into the caller's buffer, so a steady-state scrape allocates
// nothing: label values are appended digit by digit, aggregation scratch is
// owned by the Exposition and reused, and the visitor closures handed to
// the pool and gate sources are created once and cached (a fresh func
// literal per scrape would allocate).
package monitor

import (
	"strconv"
	"sync"
)

// PoolSource is the step-side counter surface the exposition scrapes —
// implemented by core.WrapperPool. All methods must be allocation-free.
type PoolSource interface {
	// Active is the number of open tracks/series.
	Active() int
	// NumShards is the pool's shard count.
	NumShards() int
	// StepCount is the total number of monitored steps served.
	StepCount() uint64
	// UncertaintySum is the sum of served dependable uncertainties.
	UncertaintySum() float64
	// OutcomeCounts visits per-fused-outcome step counts in ascending
	// order (-1 for the overflow bucket).
	OutcomeCounts(visit func(outcome int, count uint64))
}

// GateSource is the countermeasure-counter surface — implemented by
// simplex.Monitor.
type GateSource interface {
	// EachCount visits per-countermeasure activation counts.
	EachCount(visit func(name string, count int))
}

// SwapSource is the model-hot-swap surface — implemented by
// recalib.Recalibrator. All methods must be allocation-free.
type SwapSource interface {
	// ModelVersion is the serving taQIM revision (1 until the first swap).
	ModelVersion() uint64
	// RecalibrationCount is the number of completed recalibration swaps.
	RecalibrationCount() uint64
	// LastSwapUnixNano is the wall-clock time of the most recent swap in
	// Unix nanoseconds (0 when no swap has happened yet).
	LastSwapUnixNano() int64
}

// CheckpointStats is the durability-layer counter set the exposition
// renders — implemented by store.Checkpointer (defined here so the monitor
// package never imports the store).
type CheckpointStats struct {
	// Checkpoints and Flushes count completed full checkpoints and
	// incremental WAL flushes; Errors counts failed cycles.
	Checkpoints, Flushes, Errors uint64
	// WALRecords and WALBytes count records/bytes appended to the WAL.
	WALRecords, WALBytes uint64
	// LastCheckpointUnixNano is the completion time of the newest
	// checkpoint (0 before the first); LastCheckpointBytes its blob size.
	LastCheckpointUnixNano int64
	LastCheckpointBytes    uint64
	// StoreErrors counts individual failed store operations (each retry
	// attempt that errored), as opposed to Errors which counts failed
	// whole cycles after retries were exhausted.
	StoreErrors uint64
	// Degraded is true while the circuit breaker has durability suspended;
	// DegradedEntries counts how many times the breaker has tripped.
	Degraded        bool
	DegradedEntries uint64
}

// CheckpointSource is the durability-counter surface. CheckpointStats must
// be allocation-free.
type CheckpointSource interface {
	CheckpointStats() CheckpointStats
}

// ShedSource is the admission-control counter surface — implemented by
// tauserve's limiter set. EachShed must be allocation-free; the visitor it
// receives is created once and cached by the Exposition.
type ShedSource interface {
	// EachShed visits shed-request counts by endpoint and reason (e.g.
	// "queue_full", "deadline"), including zero counts so the series exist
	// before the first shed.
	EachShed(visit func(endpoint, reason string, count uint64))
}

// EndpointLatency pairs a latency histogram with its endpoint label.
type EndpointLatency struct {
	Name string
	Hist *LatencyHist
}

// Exposition renders the monitoring state as Prometheus text. Monitor is
// required; Pool, Gate, and Latencies are optional sections. An Exposition
// is safe for concurrent use (scrapes serialise on its scratch).
type Exposition struct {
	Monitor    *Monitor
	Pool       PoolSource
	Gate       GateSource
	Swap       SwapSource
	Checkpoint CheckpointSource
	Shed       ShedSource
	Latencies  []EndpointLatency
	// Stages renders tauw_stage_duration_seconds{stage=...} — per-stage
	// latency attribution across the serving and durability layers.
	Stages *StageSet
	// Go renders the Go runtime section (goroutines, heap, GC, build
	// info); construct with NewGoStats.
	Go *GoStats

	mu sync.Mutex
	// Reused aggregation scratch and cached visitor closures: both exist
	// so a scrape allocates nothing after the first.
	bins      []binStat
	latCounts []uint64
	dst       []byte
	outcomeFn func(outcome int, count uint64)
	gateFn    func(name string, count int)
	shedFn    func(endpoint, reason string, count uint64)
}

// latBoundLabels are the `le` label strings of the latency buckets, built
// once so scrapes never format them.
var latBoundLabels = func() [len(latBoundsNanos)]string {
	var out [len(latBoundsNanos)]string
	for i, n := range latBoundsNanos {
		out[i] = strconv.FormatFloat(float64(n)/1e9, 'g', -1, 64)
	}
	return out
}()

// AppendMetrics renders every metric into dst and returns the extended
// slice (append semantics: use the return value). The scrape holds each
// accumulator shard's lock only while summing it, so it never stalls the
// hot paths for the duration of the render.
func (e *Exposition) AppendMetrics(dst []byte) []byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.dst = dst
	if e.Pool != nil {
		e.appendPool()
	}
	if e.Monitor != nil {
		e.appendReliability()
		e.appendDrift()
	}
	if e.Swap != nil {
		e.appendSwap()
	}
	if e.Gate != nil {
		e.appendGate()
	}
	if e.Checkpoint != nil {
		e.appendCheckpoint()
	}
	if e.Shed != nil {
		e.appendShed()
	}
	if len(e.Latencies) > 0 {
		// One HELP/TYPE preamble for the family; the per-endpoint label
		// sets follow (a repeated TYPE line for the same name would be
		// rejected by strict exposition parsers).
		e.header("tauw_request_duration_seconds", "Request latency by endpoint.", "histogram")
		for i := range e.Latencies {
			e.appendHist("tauw_request_duration_seconds", "endpoint", e.Latencies[i].Name, e.Latencies[i].Hist)
		}
	}
	if e.Stages != nil {
		e.header("tauw_stage_duration_seconds",
			"Per-stage latency attribution (decode/step/encode in the handlers, store_append/checkpoint/fsync in the durability loop).",
			"histogram")
		for _, st := range e.Stages.stages() {
			e.appendHist("tauw_stage_duration_seconds", "stage", st.name, st.hist)
		}
	}
	if e.Go != nil {
		e.appendGoStats()
	}
	dst = e.dst
	e.dst = nil
	return dst
}

// header appends one metric's # HELP / # TYPE preamble.
func (e *Exposition) header(name, help, typ string) {
	e.dst = append(e.dst, "# HELP "...)
	e.dst = append(e.dst, name...)
	e.dst = append(e.dst, ' ')
	e.dst = append(e.dst, help...)
	e.dst = append(e.dst, "\n# TYPE "...)
	e.dst = append(e.dst, name...)
	e.dst = append(e.dst, ' ')
	e.dst = append(e.dst, typ...)
	e.dst = append(e.dst, '\n')
}

func (e *Exposition) sampleUint(name string, v uint64) {
	e.dst = append(e.dst, name...)
	e.dst = append(e.dst, ' ')
	e.dst = strconv.AppendUint(e.dst, v, 10)
	e.dst = append(e.dst, '\n')
}

func (e *Exposition) sampleFloat(name string, v float64) {
	e.dst = append(e.dst, name...)
	e.dst = append(e.dst, ' ')
	e.dst = strconv.AppendFloat(e.dst, v, 'g', -1, 64)
	e.dst = append(e.dst, '\n')
}

func (e *Exposition) appendPool() {
	e.header("tauw_active_series", "Open series/tracks in the wrapper pool.", "gauge")
	e.sampleUint("tauw_active_series", uint64(e.Pool.Active()))
	e.header("tauw_pool_shards", "Shard count of the wrapper pool.", "gauge")
	e.sampleUint("tauw_pool_shards", uint64(e.Pool.NumShards()))
	e.header("tauw_steps_total", "Monitored wrapper steps served.", "counter")
	e.sampleUint("tauw_steps_total", e.Pool.StepCount())
	e.header("tauw_step_uncertainty_sum",
		"Sum of served dependable uncertainties; divide by tauw_steps_total for the mean.", "counter")
	e.sampleFloat("tauw_step_uncertainty_sum", e.Pool.UncertaintySum())
	e.header("tauw_steps_outcome_total",
		"Monitored steps by fused outcome; outcome=\"other\" aggregates classes beyond the counter range.", "counter")
	if e.outcomeFn == nil {
		e.outcomeFn = func(outcome int, count uint64) {
			e.dst = append(e.dst, `tauw_steps_outcome_total{outcome="`...)
			if outcome < 0 {
				e.dst = append(e.dst, "other"...)
			} else {
				e.dst = strconv.AppendInt(e.dst, int64(outcome), 10)
			}
			e.dst = append(e.dst, `"} `...)
			e.dst = strconv.AppendUint(e.dst, count, 10)
			e.dst = append(e.dst, '\n')
		}
	}
	e.Pool.OutcomeCounts(e.outcomeFn)
}

// appendReliability aggregates the feedback shards through the same
// aggregateInto/eceFrom implementation Snapshot uses (into the
// Exposition's reused scratch, so the scrape stays allocation-free) and
// renders the Brier, window, ECE, and per-bin reliability metrics.
func (e *Exposition) appendReliability() {
	m := e.Monitor
	if cap(e.bins) < m.cfg.Bins {
		e.bins = make([]binStat, m.cfg.Bins)
	}
	e.bins = e.bins[:m.cfg.Bins]
	t := m.aggregateInto(e.bins)

	e.header("tauw_feedback_total", "Ground-truth feedback reports joined to served estimates.", "counter")
	e.sampleUint("tauw_feedback_total", t.n)
	e.header("tauw_feedback_correct_total", "Joined feedbacks whose fused outcome matched the truth.", "counter")
	e.sampleUint("tauw_feedback_correct_total", t.correct)
	brier := 0.0
	if t.n > 0 {
		brier = t.brierSum / float64(t.n)
	}
	e.header("tauw_brier_cumulative", "Cumulative Brier score of served uncertainties against feedback.", "gauge")
	e.sampleFloat("tauw_brier_cumulative", brier)
	windowed := 0.0
	if t.winLen > 0 {
		windowed = t.winSum / float64(t.winLen)
	}
	e.header("tauw_brier_windowed", "Sliding-window Brier score (see tauw_brier_window_count).", "gauge")
	e.sampleFloat("tauw_brier_windowed", windowed)
	e.header("tauw_brier_window_count", "Feedbacks currently inside the sliding windows.", "gauge")
	e.sampleUint("tauw_brier_window_count", uint64(t.winLen))

	e.header("tauw_ece", "Expected calibration error over the reliability bins.", "gauge")
	e.sampleFloat("tauw_ece", eceFrom(e.bins, t.n))

	e.header("tauw_reliability_count",
		"Feedbacks per equal-width predicted-uncertainty bin (bin label is the bin index).", "counter")
	e.appendBinSamples("tauw_reliability_count", func(b binStat) uint64 { return b.count })
	e.header("tauw_reliability_errors", "Wrong fused outcomes per reliability bin.", "counter")
	e.appendBinSamples("tauw_reliability_errors", func(b binStat) uint64 { return b.errors })
	e.header("tauw_reliability_uncertainty_sum",
		"Sum of predicted uncertainties per reliability bin; divide by tauw_reliability_count for the bin's mean forecast.", "counter")
	for b := range e.bins {
		e.dst = append(e.dst, "tauw_reliability_uncertainty_sum{bin=\""...)
		e.dst = strconv.AppendInt(e.dst, int64(b), 10)
		e.dst = append(e.dst, `"} `...)
		e.dst = strconv.AppendFloat(e.dst, e.bins[b].uSum, 'g', -1, 64)
		e.dst = append(e.dst, '\n')
	}
}

// appendBinSamples renders one per-bin counter family. The selector is a
// plain func value over the value type, so no closure is created per call.
func (e *Exposition) appendBinSamples(name string, sel func(binStat) uint64) {
	for b := range e.bins {
		e.dst = append(e.dst, name...)
		e.dst = append(e.dst, `{bin="`...)
		e.dst = strconv.AppendInt(e.dst, int64(b), 10)
		e.dst = append(e.dst, `"} `...)
		e.dst = strconv.AppendUint(e.dst, sel(e.bins[b]), 10)
		e.dst = append(e.dst, '\n')
	}
}

func (e *Exposition) appendDrift() {
	d := e.Monitor.drift.status()
	e.header("tauw_drift_alarms_total", "Calibration-drift alarms raised by the Page-Hinkley detector.", "counter")
	e.sampleUint("tauw_drift_alarms_total", uint64(d.Alarms))
	e.header("tauw_drift_active", "1 while a drift alarm is active (until acknowledged).", "gauge")
	active := uint64(0)
	if d.Active {
		active = 1
	}
	e.sampleUint("tauw_drift_active", active)
	e.header("tauw_drift_stat", "Current Page-Hinkley statistic (alarms above the configured lambda).", "gauge")
	e.sampleFloat("tauw_drift_stat", d.Stat)
	e.header("tauw_drift_samples", "Feedbacks folded into the detector since its last alarm.", "gauge")
	e.sampleUint("tauw_drift_samples", uint64(d.Samples))
}

// appendSwap renders the adaptive-recalibration gauges: which model
// revision is serving, how many recalibration swaps have completed, and
// when the last one landed.
func (e *Exposition) appendSwap() {
	e.header("tauw_model_version", "Serving taQIM revision (increments on every hot-swap).", "gauge")
	e.sampleUint("tauw_model_version", e.Swap.ModelVersion())
	e.header("tauw_recalibrations_total", "Completed online recalibration swaps.", "counter")
	e.sampleUint("tauw_recalibrations_total", e.Swap.RecalibrationCount())
	e.header("tauw_model_last_swap_timestamp_seconds",
		"Unix time of the most recent model hot-swap (0 before the first).", "gauge")
	e.sampleFloat("tauw_model_last_swap_timestamp_seconds", float64(e.Swap.LastSwapUnixNano())/1e9)
}

func (e *Exposition) appendGate() {
	e.header("tauw_gate_total", "Simplex-gate activations by countermeasure.", "counter")
	if e.gateFn == nil {
		e.gateFn = func(name string, count int) {
			e.dst = append(e.dst, `tauw_gate_total{countermeasure="`...)
			e.dst = append(e.dst, name...)
			e.dst = append(e.dst, `"} `...)
			e.dst = strconv.AppendInt(e.dst, int64(count), 10)
			e.dst = append(e.dst, '\n')
		}
	}
	e.Gate.EachCount(e.gateFn)
}

// appendCheckpoint renders the durability-layer counters: checkpoint and
// flush cadence, WAL growth, and the age of the newest durable checkpoint
// (alert on a stale tauw_checkpoint_last_timestamp_seconds — it means the
// write-behind loop is stuck or erroring).
func (e *Exposition) appendCheckpoint() {
	st := e.Checkpoint.CheckpointStats()
	e.header("tauw_checkpoint_total", "Completed full state checkpoints.", "counter")
	e.sampleUint("tauw_checkpoint_total", st.Checkpoints)
	e.header("tauw_checkpoint_flushes_total", "Completed incremental WAL flushes.", "counter")
	e.sampleUint("tauw_checkpoint_flushes_total", st.Flushes)
	e.header("tauw_checkpoint_errors_total", "Failed flush/checkpoint cycles (state stays dirty and is retried).", "counter")
	e.sampleUint("tauw_checkpoint_errors_total", st.Errors)
	e.header("tauw_checkpoint_wal_records_total", "Records appended to the write-ahead log.", "counter")
	e.sampleUint("tauw_checkpoint_wal_records_total", st.WALRecords)
	e.header("tauw_checkpoint_wal_bytes_total", "Bytes appended to the write-ahead log.", "counter")
	e.sampleUint("tauw_checkpoint_wal_bytes_total", st.WALBytes)
	e.header("tauw_checkpoint_last_timestamp_seconds",
		"Unix time of the newest durable checkpoint (0 before the first).", "gauge")
	e.sampleFloat("tauw_checkpoint_last_timestamp_seconds", float64(st.LastCheckpointUnixNano)/1e9)
	e.header("tauw_checkpoint_last_bytes", "Blob size of the newest checkpoint.", "gauge")
	e.sampleUint("tauw_checkpoint_last_bytes", st.LastCheckpointBytes)
	e.header("tauw_store_errors_total",
		"Failed store operations, counting every errored retry attempt.", "counter")
	e.sampleUint("tauw_store_errors_total", st.StoreErrors)
	e.header("tauw_degraded",
		"1 while durability is suspended by the circuit breaker (serving from RAM).", "gauge")
	degraded := uint64(0)
	if st.Degraded {
		degraded = 1
	}
	e.sampleUint("tauw_degraded", degraded)
	e.header("tauw_degraded_entered_total", "Times the store circuit breaker has tripped into degraded mode.", "counter")
	e.sampleUint("tauw_degraded_entered_total", st.DegradedEntries)
}

// appendShed renders the admission-control shed counters by endpoint and
// reason. The visitor closure is cached so a steady-state scrape stays
// allocation-free.
func (e *Exposition) appendShed() {
	e.header("tauw_shed_total", "Requests shed by admission control, by endpoint and reason.", "counter")
	if e.shedFn == nil {
		e.shedFn = func(endpoint, reason string, count uint64) {
			e.dst = append(e.dst, `tauw_shed_total{endpoint="`...)
			e.dst = append(e.dst, endpoint...)
			e.dst = append(e.dst, `",reason="`...)
			e.dst = append(e.dst, reason...)
			e.dst = append(e.dst, `"} `...)
			e.dst = strconv.AppendUint(e.dst, count, 10)
			e.dst = append(e.dst, '\n')
		}
	}
	e.Shed.EachShed(e.shedFn)
}

// appendHist renders one label set of a histogram family in the standard
// Prometheus shape (cumulative le buckets, _sum, _count); the family's
// single HELP/TYPE preamble is emitted by AppendMetrics before the label
// loop. Shared by the per-endpoint request histograms and the per-stage
// attribution histograms, which differ only in family and label key.
func (e *Exposition) appendHist(family, labelKey, labelVal string, h *LatencyHist) {
	if cap(e.latCounts) < len(latBoundsNanos)+1 {
		e.latCounts = make([]uint64, len(latBoundsNanos)+1)
	}
	e.latCounts = e.latCounts[:len(latBoundsNanos)+1]
	h.bucketCounts(e.latCounts)
	label := func(suffix string) {
		e.dst = append(e.dst, family...)
		e.dst = append(e.dst, suffix...)
		e.dst = append(e.dst, '{')
		e.dst = append(e.dst, labelKey...)
		e.dst = append(e.dst, `="`...)
		e.dst = append(e.dst, labelVal...)
	}
	var cum uint64
	for b := range e.latCounts {
		cum += e.latCounts[b]
		label("_bucket")
		e.dst = append(e.dst, `",le="`...)
		if b < len(latBoundLabels) {
			e.dst = append(e.dst, latBoundLabels[b]...)
		} else {
			e.dst = append(e.dst, "+Inf"...)
		}
		e.dst = append(e.dst, `"} `...)
		e.dst = strconv.AppendUint(e.dst, cum, 10)
		e.dst = append(e.dst, '\n')
	}
	label("_sum")
	e.dst = append(e.dst, `"} `...)
	e.dst = strconv.AppendFloat(e.dst, h.SumSeconds(), 'g', -1, 64)
	e.dst = append(e.dst, '\n')
	label("_count")
	e.dst = append(e.dst, `"} `...)
	e.dst = strconv.AppendUint(e.dst, cum, 10)
	e.dst = append(e.dst, '\n')
}
