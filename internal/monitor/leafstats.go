// leafstats.go holds the per-leaf feedback accumulators of the adaptive
// recalibration loop: every ground-truth feedback joined to a served
// estimate is attributed to the taQIM region (leaf) that produced the
// estimate — the Result.TAQIMLeaf provenance the wrapper pool records — so
// the recalibration policy can refresh each leaf's binomial bound from the
// evidence that actually accumulated in that region.
//
// Like the reliability accumulators, the counters are sharded by track id
// with the pool's Fibonacci-hash shard selection and padded to the 128-byte
// shard stride, so concurrent feedback for different tracks almost never
// contends and shards never false-share. Within a shard the per-leaf
// counters are plain atomics (two adds per observation), which keeps the
// feedback path allocation-free.
package monitor

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"unsafe"
)

// LeafCounts is the aggregated online evidence of one leaf region.
type LeafCounts struct {
	// Count is the number of feedbacks attributed to the leaf; Events is
	// how many of them judged the fused outcome wrong.
	Count, Events uint64
}

// leafShardState is the payload of one leaf-accumulator shard: interleaved
// (count, events) atomic pairs, one per leaf, plus a trailing overflow pair
// for unattributable feedback (leaf id -1 — estimates served without a
// taQIM — or out of range). The slice is sized at construction and never
// grows, so the write path is two lock-free adds.
type leafShardState struct {
	counters []atomic.Uint64
}

// leafShard pads the state to the shard stride (the trackShard pattern;
// TestShardPadding pins it).
//
//tauw:pad=128
type leafShard struct {
	leafShardState
	_ [shardPad - unsafe.Sizeof(leafShardState{})%shardPad]byte
}

// LeafStats accumulates ground-truth feedback per taQIM leaf. It is safe
// for concurrent use; Observe is lock-free.
type LeafStats struct {
	nLeaves    int
	shards     []leafShard
	shardShift uint8
}

// NewLeafStats creates accumulators for a model with nLeaves regions.
// shards is rounded up to a power of two (0 means DefaultShards).
func NewLeafStats(nLeaves, shards int) (*LeafStats, error) {
	if nLeaves <= 0 {
		return nil, fmt.Errorf("monitor: leaf count %d must be positive", nLeaves)
	}
	if shards < 0 {
		return nil, fmt.Errorf("monitor: shard count %d must be >= 0", shards)
	}
	if shards == 0 {
		shards = DefaultShards
	}
	nshards := 1
	for nshards < shards {
		nshards <<= 1
	}
	s := &LeafStats{
		nLeaves:    nLeaves,
		shards:     make([]leafShard, nshards),
		shardShift: uint8(64 - bits.TrailingZeros(uint(nshards))),
	}
	for i := range s.shards {
		s.shards[i].counters = make([]atomic.Uint64, 2*(nLeaves+1))
	}
	return s, nil
}

// NumLeaves reports the leaf count the accumulators were sized for.
func (s *LeafStats) NumLeaves() int { return s.nLeaves }

// slot maps a leaf id to its counter pair index; ids outside [0, nLeaves)
// (including the -1 "no taQIM" marker) land in the overflow pair.
func (s *LeafStats) slot(leafID int) int {
	if leafID >= 0 && leafID < s.nLeaves {
		return 2 * leafID
	}
	return 2 * s.nLeaves
}

// Observe attributes one ground-truth verdict to the leaf that produced the
// judged estimate: two atomic adds, no locks, no allocation. The count is
// bumped before the event; paired with the readers' event-before-count
// order, an aggregate can therefore never report more events than
// observations for a leaf, however the adds interleave.
func (s *LeafStats) Observe(trackID, leafID int, wrong bool) {
	sh := &s.shards[(uint64(trackID)*fibMul)>>s.shardShift]
	i := s.slot(leafID)
	sh.counters[i].Add(1)
	if wrong {
		sh.counters[i+1].Add(1)
	}
}

// Totals aggregates the per-leaf evidence across shards into dst (grown as
// needed; index = leaf id) and returns it. The aggregation allocates nothing
// when cap(dst) >= NumLeaves.
func (s *LeafStats) Totals(dst []LeafCounts) []LeafCounts {
	if cap(dst) < s.nLeaves {
		dst = make([]LeafCounts, s.nLeaves)
	}
	dst = dst[:s.nLeaves]
	for i := range dst {
		dst[i] = LeafCounts{}
	}
	for i := range s.shards {
		sh := &s.shards[i]
		for leaf := 0; leaf < s.nLeaves; leaf++ {
			// Events before count (see Observe): a concurrent observation
			// can make the pair read low, never inconsistent.
			dst[leaf].Events += sh.counters[2*leaf+1].Load()
			dst[leaf].Count += sh.counters[2*leaf].Load()
		}
	}
	return dst
}

// Unattributed returns the evidence that could not be attributed to a leaf
// (feedback for estimates served without a taQIM, or with a leaf id outside
// the accumulators' range).
func (s *LeafStats) Unattributed() LeafCounts {
	var out LeafCounts
	for i := range s.shards {
		sh := &s.shards[i]
		out.Events += sh.counters[2*s.nLeaves+1].Load()
		out.Count += sh.counters[2*s.nLeaves].Load()
	}
	return out
}

// TotalCount returns the number of attributed feedbacks across all leaves.
func (s *LeafStats) TotalCount() uint64 {
	var n uint64
	for i := range s.shards {
		sh := &s.shards[i]
		for leaf := 0; leaf < s.nLeaves; leaf++ {
			n += sh.counters[2*leaf].Load()
		}
	}
	return n
}

// Reset clears every counter, called after a recalibration has absorbed the
// accumulated evidence into the model. Feedback racing the reset may be
// lost from the next cycle's accumulators — bounded by the in-flight joins
// of the reset instant, and safe: evidence is only ever under-, never
// double-counted.
func (s *LeafStats) Reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		for j := range sh.counters {
			sh.counters[j].Store(0)
		}
	}
}
