package monitor

import (
	"sync/atomic"
	"time"
	"unsafe"
)

// latBoundsNanos are the histogram bucket upper bounds in nanoseconds,
// spanning handler-direct microsecond costs up to pathological full-second
// requests; everything above the last bound lands in the +Inf bucket.
// Exposed in seconds as Prometheus `le` labels (see expo.go).
var latBoundsNanos = [...]uint64{
	1_000, 2_500, 10_000, 25_000, 100_000, 250_000, // 1µs .. 250µs
	1_000_000, 2_500_000, 10_000_000, 25_000_000, // 1ms .. 25ms
	100_000_000, 1_000_000_000, // 100ms, 1s
}

// latStripes is the number of independent copies the histogram counters are
// striped across: concurrent requests usually update different stripes, so
// the atomic adds do not all hammer one cache line.
const latStripes = 8

// latStripeState is one stripe's counters: per-bucket counts plus the sum
// and count that make the exposition a standard Prometheus histogram.
type latStripeState struct {
	buckets  [len(latBoundsNanos) + 1]atomic.Uint64
	sumNanos atomic.Uint64
	count    atomic.Uint64
}

// latStripe pads a stripe to the shard stride, the same false-sharing
// defence the accumulator shards use.
//
//tauw:pad=128
type latStripe struct {
	latStripeState
	_ [shardPad - unsafe.Sizeof(latStripeState{})%shardPad]byte
}

// LatencyHist is a striped, allocation-free latency histogram. Recording is
// a bucket scan plus three atomic adds on one stripe; scraping aggregates
// the stripes (expo.go). The zero value is ready to use; NewLatencyHist
// exists so callers hold the (large, padded) struct behind a pointer.
type LatencyHist struct {
	stripes [latStripes]latStripe
}

// NewLatencyHist creates a latency histogram.
func NewLatencyHist() *LatencyHist { return &LatencyHist{} }

// Observe records one duration. The stripe is picked from the duration's
// own low-entropy bits through the Fibonacci multiplier — effectively
// random across concurrent requests without any shared stripe counter.
func (h *LatencyHist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	nanos := uint64(d)
	s := &h.stripes[(nanos*fibMul)>>(64-3)] // top 3 bits: 8 stripes
	b := 0
	for b < len(latBoundsNanos) && nanos > latBoundsNanos[b] {
		b++
	}
	s.buckets[b].Add(1)
	s.sumNanos.Add(nanos)
	s.count.Add(1)
}

// Count returns the number of observations recorded.
func (h *LatencyHist) Count() uint64 {
	var n uint64
	for i := range h.stripes {
		n += h.stripes[i].count.Load()
	}
	return n
}

// SumSeconds returns the sum of all observed durations in seconds.
func (h *LatencyHist) SumSeconds() float64 {
	var nanos uint64
	for i := range h.stripes {
		nanos += h.stripes[i].sumNanos.Load()
	}
	return float64(nanos) / 1e9
}

// bucketCounts writes the aggregated per-bucket counts (non-cumulative)
// into out, which must have len(latBoundsNanos)+1 entries.
func (h *LatencyHist) bucketCounts(out []uint64) {
	for b := range out {
		out[b] = 0
	}
	for i := range h.stripes {
		for b := range out {
			out[b] += h.stripes[i].buckets[b].Load()
		}
	}
}
