package monitor

import (
	"sync"
	"testing"
)

func TestLeafStatsAttribution(t *testing.T) {
	s, err := NewLeafStats(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumLeaves() != 4 {
		t.Fatalf("NumLeaves = %d, want 4", s.NumLeaves())
	}
	// Spread observations across tracks (hence shards) and leaves.
	for track := 0; track < 50; track++ {
		s.Observe(track, track%4, track%3 == 0)
	}
	s.Observe(1, -1, true)  // no-taQIM estimate
	s.Observe(2, 99, false) // out-of-range leaf
	totals := s.Totals(nil)
	if len(totals) != 4 {
		t.Fatalf("Totals length %d, want 4", len(totals))
	}
	var count, events uint64
	for leaf, lc := range totals {
		count += lc.Count
		events += lc.Events
		var wantC, wantE uint64
		for track := 0; track < 50; track++ {
			if track%4 == leaf {
				wantC++
				if track%3 == 0 {
					wantE++
				}
			}
		}
		if lc.Count != wantC || lc.Events != wantE {
			t.Errorf("leaf %d: %d/%d, want %d/%d", leaf, lc.Events, lc.Count, wantE, wantC)
		}
	}
	if count != 50 {
		t.Errorf("attributed count %d, want 50", count)
	}
	if got := s.TotalCount(); got != 50 {
		t.Errorf("TotalCount = %d, want 50", got)
	}
	if un := s.Unattributed(); un.Count != 2 || un.Events != 1 {
		t.Errorf("Unattributed = %+v, want {2 1}", un)
	}
	// Totals reuses the caller's slice without allocating.
	reused := s.Totals(totals)
	if &reused[0] != &totals[0] {
		t.Error("Totals did not reuse the caller's slice")
	}
	s.Reset()
	if got := s.TotalCount(); got != 0 {
		t.Errorf("TotalCount after Reset = %d, want 0", got)
	}
	if un := s.Unattributed(); un.Count != 0 {
		t.Errorf("Unattributed after Reset = %+v, want zero", un)
	}
}

func TestLeafStatsValidation(t *testing.T) {
	if _, err := NewLeafStats(0, 0); err == nil {
		t.Error("zero leaves must fail")
	}
	if _, err := NewLeafStats(3, -1); err == nil {
		t.Error("negative shards must fail")
	}
	s, err := NewLeafStats(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.shards) != DefaultShards {
		t.Errorf("default shard count %d, want %d", len(s.shards), DefaultShards)
	}
}

func TestLeafStatsConcurrent(t *testing.T) {
	s, err := NewLeafStats(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	const tracks, perTrack = 16, 500
	var wg sync.WaitGroup
	for track := 0; track < tracks; track++ {
		wg.Add(1)
		go func(track int) {
			defer wg.Done()
			for j := 0; j < perTrack; j++ {
				s.Observe(track, j%8, j%2 == 0)
			}
		}(track)
	}
	// A concurrent aggregator must never observe events > count.
	done := make(chan struct{})
	go func() {
		defer close(done)
		var scratch []LeafCounts
		for i := 0; i < 200; i++ {
			scratch = s.Totals(scratch)
			for leaf, lc := range scratch {
				if lc.Events > lc.Count {
					t.Errorf("leaf %d: events %d > count %d", leaf, lc.Events, lc.Count)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if got, want := s.TotalCount(), uint64(tracks*perTrack); got != want {
		t.Errorf("TotalCount = %d, want %d", got, want)
	}
}

// TestLeafStatsObserveAllocs pins the feedback-side hot path at zero
// allocations.
func TestLeafStatsObserveAllocs(t *testing.T) {
	s, err := NewLeafStats(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.Observe(7, 3, true)
	})
	if allocs != 0 {
		t.Errorf("Observe allocates %g per run, want 0", allocs)
	}
}
