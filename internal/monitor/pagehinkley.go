package monitor

import (
	"fmt"
	"sync"
)

// DriftConfig tunes the Page-Hinkley calibration-drift detector. The
// detector watches the stream of per-feedback squared errors (the Brier
// contributions) for a sustained increase of its mean: a wrapper whose
// estimates stay calibrated keeps the mean near the offline Brier score,
// while a QIM drifting into miscalibration pushes it up. Page-Hinkley is
// the classic sequential test for exactly this shape (Page 1954; the
// standard drift detector in the streaming-ML literature): it accumulates
// deviations of each sample from the running mean beyond a tolerance Delta
// and alarms when the accumulated deviation climbs Lambda above its
// historical minimum.
type DriftConfig struct {
	// Delta is the per-sample tolerance: deviations below the running
	// mean + Delta do not count towards drift. A zero Delta means
	// DefaultDriftDelta unless DeltaSet is true.
	Delta float64
	// DeltaSet marks Delta as explicitly chosen, making the strict Delta=0
	// detector (every deviation above the running mean counts) expressible:
	// without it a zero value is indistinguishable from "not configured"
	// and was silently replaced by the default. The zero-value Config keeps
	// its historical meaning (DeltaSet false, Delta 0 → DefaultDriftDelta).
	DeltaSet bool
	// Lambda is the alarm threshold on the accumulated deviation (0 means
	// DefaultDriftLambda). With squared errors in [0,1], a sustained mean
	// increase of g raises the statistic by roughly g-Delta per feedback,
	// so the alarm fires after about Lambda/(g-Delta) degraded feedbacks.
	Lambda float64
	// MinSamples is the number of feedbacks the running mean must have
	// seen before alarms can fire, so a cold start cannot alarm on its
	// first few samples (0 means DefaultDriftMinSamples).
	MinSamples int
	// Disabled turns the detector off entirely.
	Disabled bool
}

// Drift detector defaults: tolerate 0.5% mean Brier degradation, alarm
// after the equivalent of ~250 feedbacks at 10% degradation, and never
// alarm before 200 feedbacks.
const (
	DefaultDriftDelta      = 0.005
	DefaultDriftLambda     = 25.0
	DefaultDriftMinSamples = 200
)

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Delta == 0 && !c.DeltaSet {
		c.Delta = DefaultDriftDelta
	}
	if c.Lambda == 0 {
		c.Lambda = DefaultDriftLambda
	}
	if c.MinSamples == 0 {
		c.MinSamples = DefaultDriftMinSamples
	}
	return c
}

func (c DriftConfig) validate() error {
	if c.Delta < 0 {
		return fmt.Errorf("monitor: drift delta %g must be >= 0", c.Delta)
	}
	if c.Lambda <= 0 {
		return fmt.Errorf("monitor: drift lambda %g must be > 0", c.Lambda)
	}
	if c.MinSamples < 0 {
		return fmt.Errorf("monitor: drift min samples %d must be >= 0", c.MinSamples)
	}
	return nil
}

// DriftStatus is the drift detector's observable state.
type DriftStatus struct {
	// Samples is the number of feedbacks folded in since the last alarm
	// (the detector re-arms by resetting after alarming).
	Samples int
	// Mean is the running mean squared error the deviations are measured
	// against.
	Mean float64
	// Stat is the current Page-Hinkley statistic (accumulated deviation
	// above its minimum); the detector alarms when Stat > Lambda.
	Stat float64
	// Alarms counts alarms raised since construction; Active is true from
	// an alarm until ResetDriftAlarm.
	Alarms int
	Active bool
}

// pageHinkley is the detector itself. It is sequential by nature (the
// statistic depends on sample order), so it runs under one mutex rather
// than sharded; the update is a handful of float operations, negligible
// next to the feedback join it follows.
type pageHinkley struct {
	cfg DriftConfig

	mu     sync.Mutex
	n      int
	mean   float64
	mT     float64 // accumulated deviation Σ (x - mean - delta)
	minMT  float64
	alarms int
	active bool
}

func newPageHinkley(cfg DriftConfig) pageHinkley {
	return pageHinkley{cfg: cfg}
}

// observe folds one squared error into the statistic, alarming and
// re-arming on threshold crossing. It reports whether this sample raised
// an alarm — the transition edge the flight recorder snapshots on.
func (p *pageHinkley) observe(se float64) bool {
	if p.cfg.Disabled {
		return false
	}
	raised := false
	p.mu.Lock()
	p.n++
	p.mean += (se - p.mean) / float64(p.n)
	p.mT += se - p.mean - p.cfg.Delta
	if p.mT < p.minMT {
		p.minMT = p.mT
	}
	if p.n >= p.cfg.MinSamples && p.mT-p.minMT > p.cfg.Lambda {
		p.alarms++
		p.active = true
		raised = true
		// Re-arm: restart the statistic (and the running mean, so the
		// detector adapts to the post-drift regime instead of alarming
		// forever against the stale baseline).
		p.n = 0
		p.mean = 0
		p.mT = 0
		p.minMT = 0
	}
	p.mu.Unlock()
	return raised
}

func (p *pageHinkley) status() DriftStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	return DriftStatus{
		Samples: p.n,
		Mean:    p.mean,
		Stat:    p.mT - p.minMT,
		Alarms:  p.alarms,
		Active:  p.active,
	}
}

func (p *pageHinkley) alarmed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active
}

func (p *pageHinkley) resetAlarm() {
	p.mu.Lock()
	p.active = false
	p.mu.Unlock()
}
