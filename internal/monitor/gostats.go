package monitor

import (
	"math"
	"runtime"
	"runtime/metrics"
	"strconv"
)

// goStatNames are the runtime/metrics samples the exposition publishes.
// The indices are fixed so appendGoStats reads by position.
const (
	goStatGoroutines = iota
	goStatHeapBytes
	goStatTotalBytes
	goStatGCCycles
	goStatGCPauses
	numGoStats
)

var goStatNames = [numGoStats]string{
	goStatGoroutines: "/sched/goroutines:goroutines",
	goStatHeapBytes:  "/memory/classes/heap/objects:bytes",
	goStatTotalBytes: "/memory/classes/total:bytes",
	goStatGCCycles:   "/gc/cycles/total:gc-cycles",
	goStatGCPauses:   "/gc/pauses:seconds",
}

// GoStats reads Go runtime telemetry for the exposition. The sample slice
// is built once and reused, and runtime/metrics reuses histogram memory
// across Read calls on the same samples, so a steady-state scrape stays
// allocation-free after the warm-up Read in NewGoStats.
type GoStats struct {
	samples []metrics.Sample
	// buildInfo is the pre-rendered tauw_build_info sample line: the
	// labels never change over a process lifetime.
	buildInfo []byte
}

// NewGoStats prepares the runtime sample set and the build-info line.
func NewGoStats() *GoStats {
	g := &GoStats{samples: make([]metrics.Sample, numGoStats)}
	for i, name := range goStatNames {
		g.samples[i].Name = name
	}
	metrics.Read(g.samples) // warm: allocates the pause histogram once
	g.buildInfo = append(g.buildInfo, `tauw_build_info{go_version="`...)
	g.buildInfo = append(g.buildInfo, runtime.Version()...)
	g.buildInfo = append(g.buildInfo, `",goos="`...)
	g.buildInfo = append(g.buildInfo, runtime.GOOS...)
	g.buildInfo = append(g.buildInfo, `",goarch="`...)
	g.buildInfo = append(g.buildInfo, runtime.GOARCH...)
	g.buildInfo = append(g.buildInfo, "\"} 1\n"...)
	return g
}

// uintValue extracts a sample's value as uint64, tolerating KindBad (a
// name this runtime does not export) as 0 so a Go-version skew degrades to
// a zero sample instead of a broken scrape.
func uintValue(s *metrics.Sample) uint64 {
	if s.Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s.Value.Uint64()
}

// pauseSeconds estimates the cumulative GC stop-the-world pause time from
// the /gc/pauses:seconds distribution: Σ count × bucket midpoint, using
// the finite neighbour for the open-ended edge buckets. An estimate is the
// best any exporter can do here — the runtime publishes the distribution,
// not a running sum — and midpoints of the runtime's fine-grained buckets
// keep the error well under the bucket width.
func pauseSeconds(s *metrics.Sample) float64 {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	h := s.Value.Float64Histogram()
	if h == nil || len(h.Buckets) != len(h.Counts)+1 {
		return 0
	}
	var total float64
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		switch {
		case math.IsInf(lo, -1):
			lo = hi
		case math.IsInf(hi, 1):
			hi = lo
		}
		total += float64(n) * (lo + hi) / 2
	}
	return total
}

// appendGoStats renders the Go runtime section: scheduler and memory
// gauges, GC counters, and the constant build-info sample.
func (e *Exposition) appendGoStats() {
	g := e.Go
	metrics.Read(g.samples)
	e.header("tauw_go_goroutines", "Live goroutines.", "gauge")
	e.sampleUint("tauw_go_goroutines", uintValue(&g.samples[goStatGoroutines]))
	e.header("tauw_go_heap_bytes", "Bytes of live heap objects (/memory/classes/heap/objects).", "gauge")
	e.sampleUint("tauw_go_heap_bytes", uintValue(&g.samples[goStatHeapBytes]))
	e.header("tauw_go_mem_total_bytes", "Total bytes of memory mapped by the Go runtime.", "gauge")
	e.sampleUint("tauw_go_mem_total_bytes", uintValue(&g.samples[goStatTotalBytes]))
	e.header("tauw_go_gc_cycles_total", "Completed GC cycles.", "counter")
	e.sampleUint("tauw_go_gc_cycles_total", uintValue(&g.samples[goStatGCCycles]))
	e.header("tauw_go_gc_pause_seconds",
		"Estimated cumulative GC stop-the-world pause time (midpoint sum of /gc/pauses).", "counter")
	e.dst = append(e.dst, "tauw_go_gc_pause_seconds "...)
	e.dst = strconv.AppendFloat(e.dst, pauseSeconds(&g.samples[goStatGCPauses]), 'g', -1, 64)
	e.dst = append(e.dst, '\n')
	e.header("tauw_build_info", "Constant 1 labelled with the build's Go version and platform.", "gauge")
	e.dst = append(e.dst, g.buildInfo...)
}
