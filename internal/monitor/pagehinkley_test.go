package monitor

import "testing"

// TestDriftDeltaExplicitZero is the regression test for the silently
// impossible strict detector: an operator requesting Delta = 0 (every
// deviation above the running mean counts towards drift) used to have the
// zero replaced by DefaultDriftDelta in withDefaults. DeltaSet makes the
// explicit zero representable while the zero-value Config keeps its
// historical default.
func TestDriftDeltaExplicitZero(t *testing.T) {
	// Zero-value behaviour is unchanged: unset Delta takes the default.
	def := DriftConfig{}.withDefaults()
	if def.Delta != DefaultDriftDelta {
		t.Errorf("zero-value Delta = %g, want default %g", def.Delta, DefaultDriftDelta)
	}
	// An explicitly chosen zero survives.
	strict := DriftConfig{DeltaSet: true}.withDefaults()
	if strict.Delta != 0 {
		t.Errorf("explicit zero Delta = %g, want 0", strict.Delta)
	}
	// A non-zero Delta is kept either way.
	for _, set := range []bool{false, true} {
		got := DriftConfig{Delta: 0.25, DeltaSet: set}.withDefaults()
		if got.Delta != 0.25 {
			t.Errorf("DeltaSet=%v: Delta = %g, want 0.25", set, got.Delta)
		}
	}
	// And the configuration reaches the detector through monitor.New.
	m, err := New(Config{Drift: DriftConfig{DeltaSet: true, Lambda: 1, MinSamples: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Config().Drift.Delta; got != 0 {
		t.Errorf("monitor drift Delta = %g, want explicit 0", got)
	}
	// Behavioural check: with Delta 0 and a tiny lambda, a constant stream
	// of identical squared errors still accumulates nothing (deviations
	// from the running mean are 0), but a step change alarms immediately —
	// the strict detector the operator asked for.
	for i := 0; i < 50; i++ {
		if err := m.Observe(1, 0.1, false); err != nil { // se = 0.01 each
			t.Fatal(err)
		}
	}
	if m.DriftAlarmed() {
		t.Fatal("constant stream must not alarm even at Delta 0")
	}
	for i := 0; i < 50; i++ {
		if err := m.Observe(1, 0.9, false); err != nil { // se jumps to 0.81
			t.Fatal(err)
		}
	}
	if !m.DriftAlarmed() {
		t.Fatal("step change must alarm the strict Delta=0 detector")
	}
}

// TestDriftDeltaValidation: negative deltas stay invalid with or without
// DeltaSet.
func TestDriftDeltaValidation(t *testing.T) {
	bad := DriftConfig{Delta: -0.1, DeltaSet: true, Lambda: 1, MinSamples: 1}
	if err := bad.validate(); err == nil {
		t.Error("negative Delta must stay invalid")
	}
}
