package monitor

// StageSet is the per-stage latency attribution of one request's path
// through the stack: the serving layer times decode/step/encode around its
// handlers, the durability layer times store_append/checkpoint/fsync
// inside the write-behind loop. Each stage is a full LatencyHist (striped,
// allocation-free), rendered on /metrics as one
// tauw_stage_duration_seconds histogram family with a stage label — the
// per-stage breakdown that finally attributes the HTTP-vs-handler latency
// gap (ROADMAP item 2).
type StageSet struct {
	Decode      LatencyHist
	Step        LatencyHist
	Encode      LatencyHist
	StoreAppend LatencyHist
	Checkpoint  LatencyHist
	Fsync       LatencyHist
}

// NewStageSet creates a stage set; the struct is large (striped, padded
// histograms), so callers hold it behind the pointer.
func NewStageSet() *StageSet { return &StageSet{} }

// stageLabels pairs each stage's exposition label with its histogram, in
// render order.
func (s *StageSet) stages() [6]struct {
	name string
	hist *LatencyHist
} {
	return [6]struct {
		name string
		hist *LatencyHist
	}{
		{"decode", &s.Decode},
		{"step", &s.Step},
		{"encode", &s.Encode},
		{"store_append", &s.StoreAppend},
		{"checkpoint", &s.Checkpoint},
		{"fsync", &s.Fsync},
	}
}
