// Command taugen generates and inspects the synthetic GTSRB timeseries
// benchmark: it prints dataset statistics (class balance, series geometry,
// deficit distributions) and can export the series metadata as JSON or CSV
// for external analysis.
//
// Usage:
//
//	taugen [-series N] [-seed N] [-format summary|json|csv] [-out file]
//
//tauw:cli
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"github.com/iese-repro/tauw/internal/augment"
	"github.com/iese-repro/tauw/internal/gtsrb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "taugen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("taugen", flag.ContinueOnError)
	var (
		nSeries = fs.Int("series", 1307, "number of series to generate")
		seed    = fs.Uint64("seed", 1, "generator seed")
		format  = fs.String("format", "summary", "output format: summary, json, or csv")
		outPath = fs.String("out", "", "write output to this file instead of stdout")
		augN    = fs.Int("augment", 1, "situation settings sampled per series for the deficit summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := gtsrb.DefaultGeneratorConfig()
	cfg.NumSeries = *nSeries
	cfg.Seed = *seed
	if cfg.NumSeries >= 3*gtsrb.NumClasses {
		cfg.MinPerClass = 3
	}
	series, err := gtsrb.Generate(cfg)
	if err != nil {
		return err
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	switch *format {
	case "summary":
		return writeSummary(out, series, *seed, *augN)
	case "json":
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(series)
	case "csv":
		return writeCSV(out, series)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

func writeSummary(out io.Writer, series []gtsrb.Series, seed uint64, augN int) error {
	frames := 0
	classCounts := make([]int, gtsrb.NumClasses)
	for _, s := range series {
		frames += s.Len()
		classCounts[s.Class]++
	}
	fmt.Fprintf(out, "synthetic GTSRB benchmark: %d series, %d frames\n", len(series), frames)
	fmt.Fprintf(out, "%-4s %-40s %-14s %s\n", "id", "class", "family", "series")
	for _, c := range gtsrb.Catalog() {
		fmt.Fprintf(out, "%-4d %-40s %-14s %d\n", c.ID, c.Name, c.Family, classCounts[c.ID])
	}
	if augN > 0 {
		pool, err := augment.NewPool(seed+1, augment.PaperPoolSize)
		if err != nil {
			return err
		}
		var meanSeverity float64
		var rainy, dark int
		n := min(len(series)*augN, 2000)
		for i := 0; i < n; i++ {
			setting, err := pool.Setting(i)
			if err != nil {
				return err
			}
			meanSeverity += setting.Base.Severity()
			if setting.RainMMH > 0 {
				rainy++
			}
			if setting.Base[augment.Darkness] > 0.8 {
				dark++
			}
		}
		fmt.Fprintf(out, "\nsituation settings (sample of %d from a pool of %d):\n", n, augment.PaperPoolSize)
		fmt.Fprintf(out, "  mean severity %.3f, rainy %.1f%%, dark %.1f%%\n",
			meanSeverity/float64(n), 100*float64(rainy)/float64(n), 100*float64(dark)/float64(n))
	}
	return nil
}

func writeCSV(out io.Writer, series []gtsrb.Series) error {
	w := csv.NewWriter(out)
	defer w.Flush()
	if err := w.Write([]string{"series", "step", "class", "distance_m", "pixel_size", "image_x", "image_y", "speed_kmh", "lat", "lon"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for _, s := range series {
		for _, fr := range s.Frames {
			rec := []string{
				strconv.Itoa(s.ID), strconv.Itoa(fr.Step), strconv.Itoa(fr.Class),
				f(fr.Distance), f(fr.PixelSize), f(fr.ImageX), f(fr.ImageY),
				f(fr.SpeedKMH), f(s.Location.Lat), f(s.Location.Lon),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	return w.Error()
}
