package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"github.com/iese-repro/tauw/internal/gtsrb"
)

func TestSummaryFormat(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-series", "150", "-format", "summary"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "150 series") {
		t.Errorf("summary missing series count:\n%s", text)
	}
	if !strings.Contains(text, "stop") || !strings.Contains(text, "speed limit 30") {
		t.Error("summary missing class names")
	}
	if !strings.Contains(text, "situation settings") {
		t.Error("summary missing settings block")
	}
}

func TestJSONFormat(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-series", "50", "-format", "json"}, &out); err != nil {
		t.Fatal(err)
	}
	var series []gtsrb.Series
	if err := json.Unmarshal(out.Bytes(), &series); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(series) != 50 {
		t.Errorf("decoded %d series, want 50", len(series))
	}
}

func TestCSVFormat(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-series", "10", "-format", "csv"}, &out); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&out).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) < 10*29+1 {
		t.Errorf("csv has %d rows, want at least %d", len(records), 10*29+1)
	}
	if records[0][0] != "series" {
		t.Errorf("csv header wrong: %v", records[0])
	}
	if len(records[1]) != 10 {
		t.Errorf("csv row width %d, want 10", len(records[1]))
	}
}

func TestOutFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/data.json"
	var out bytes.Buffer
	if err := run([]string{"-series", "20", "-format", "json", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Error("stdout must stay empty when -out is used")
	}
}

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-format", "bogus"}, &out); err == nil {
		t.Error("bogus format must fail")
	}
	if err := run([]string{"-series", "0"}, &out); err == nil {
		t.Error("zero series must fail")
	}
}
