// Command tauwcheck runs the repo's invariant analyzers — hotpath, seam,
// xlogonly, shardpad, lockorder, codecpure — over the module. It speaks two
// protocols:
//
//	tauwcheck [packages]            standalone: load, analyze, print, exit 1
//	go vet -vettool=$(which tauwcheck) ./...
//
// The second form is the CI gate: cmd/go drives the tool once per package
// (plus facts-only passes over dependencies), caches results, and relays
// diagnostics. Run `tauwcheck -help` for the suite's documentation.
//
//tauw:cli
package main

import (
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/iese-repro/tauw/internal/analysis"
	"github.com/iese-repro/tauw/internal/analysis/driver"
	"github.com/iese-repro/tauw/internal/analysis/load"
	"github.com/iese-repro/tauw/internal/analysis/suite"
	"github.com/iese-repro/tauw/internal/analysis/unit"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	analyzers := suite.Analyzers()

	// The `go vet` handshake: cmd/go first asks for the tool's flags
	// (JSON), then its version (for the build cache key), then invokes it
	// with a single vet.cfg argument per package.
	for _, a := range args {
		switch {
		case a == "-flags":
			fmt.Println("[]")
			return 0
		case strings.HasPrefix(a, "-V"):
			printVersion()
			return 0
		case a == "-help" || a == "--help" || a == "help":
			usage(analyzers)
			return 0
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		fset, diags, err := unit.Run(args[0], analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tauwcheck: %v\n", err)
			return 1
		}
		if len(diags) > 0 {
			for _, d := range diags {
				fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
			}
			return 2
		}
		return 0
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := load.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tauwcheck: %v\n", err)
		return 1
	}
	diags, err := driver.Run(res, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tauwcheck: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", res.Fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tauwcheck: %d finding(s)\n", len(diags))
		return 2
	}
	return 0
}

// printVersion implements the -V=full protocol: cmd/go hashes the output
// into the vet cache key, so it must change whenever the tool's behavior
// does — hashing the executable itself guarantees that without manual
// version bumps during analyzer development.
func printVersion() {
	h := fnv.New64a()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("tauwcheck version devel buildID=%x\n", h.Sum64())
}

func usage(analyzers []*analysis.Analyzer) {
	fmt.Println("tauwcheck: static enforcement of the repo's hot-path, codec, and seam invariants")
	fmt.Println()
	fmt.Println("usage:")
	fmt.Println("  tauwcheck [packages]                     # standalone, e.g. tauwcheck ./...")
	fmt.Println("  go vet -vettool=$(which tauwcheck) ./... # as the CI gate runs it")
	fmt.Println()
	fmt.Println("analyzers:")
	sorted := append([]*analysis.Analyzer(nil), analyzers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, a := range sorted {
		fmt.Printf("  %-10s %s\n", a.Name, a.Doc)
	}
	fmt.Println()
	fmt.Println("suppress one finding with `//tauwcheck:ignore <analyzer> <reason>` on or")
	fmt.Println("directly above the offending line; see CONTRIBUTING.md for the annotation")
	fmt.Println("reference (//tauw:hotpath, //tauw:seam, //tauw:pad=N, ...).")
}
