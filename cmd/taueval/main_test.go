package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTinyAll(t *testing.T) {
	var out bytes.Buffer
	jsonPath := filepath.Join(t.TempDir(), "results.json")
	err := run([]string{"-preset", "tiny", "-experiment", "all", "-json", jsonPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"Fig. 4", "Table I", "Fig. 5", "Fig. 6", "Fig. 7", "total runtime"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"Table1\"") {
		t.Error("JSON export missing Table1")
	}
}

func TestRunSingleExperimentsAndRules(t *testing.T) {
	for _, exp := range []string{"fig4", "table1", "fig5", "fig6", "fig7", "coverage", "lengths"} {
		var out bytes.Buffer
		if err := run([]string{"-preset", "tiny", "-experiment", exp}, &out); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if out.Len() == 0 {
			t.Errorf("%s produced no output", exp)
		}
	}
	var out bytes.Buffer
	if err := run([]string{"-preset", "tiny", "-experiment", "fig4", "-rules"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "quality impact model") {
		t.Error("rules flag produced no rules")
	}
}

func TestRunAblations(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-preset", "tiny", "-experiment", "ablations"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"binomial bound", "tie-break", "depth"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-preset", "bogus"}, &out); err == nil {
		t.Error("bogus preset must fail")
	}
	if err := run([]string{"-preset", "tiny", "-experiment", "bogus"}, &out); err == nil {
		t.Error("bogus experiment must fail")
	}
	if err := run([]string{"-nonsense"}, &out); err == nil {
		t.Error("unknown flag must fail")
	}
}
