// Command taueval reproduces the paper's evaluation: it assembles the
// synthetic GTSRB study, trains the DDM, calibrates the stateless and
// timeseries-aware uncertainty wrappers, and prints the requested tables and
// figures (Fig. 4, Table I, Fig. 5, Fig. 6, Fig. 7) plus the ablations.
//
// Usage:
//
//	taueval [-preset quick|paper|tiny] [-experiment all|fig4|table1|fig5|fig6|fig7|ablations]
//	        [-seed N] [-rules] [-json out.json]
//
//tauw:cli
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/iese-repro/tauw/internal/eval"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "taueval:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("taueval", flag.ContinueOnError)
	var (
		preset     = fs.String("preset", "quick", "study preset: quick, paper, or tiny")
		experiment = fs.String("experiment", "all", "experiment: all, fig4, table1, fig5, fig6, fig7, coverage, lengths, or ablations")
		seed       = fs.Uint64("seed", 0, "override the preset's random seed (0 keeps the preset default)")
		rules      = fs.Bool("rules", false, "also print the calibrated decision-tree rules")
		jsonPath   = fs.String("json", "", "write the full results as JSON to this file (experiment=all only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var cfg eval.StudyConfig
	switch *preset {
	case "quick":
		cfg = eval.QuickConfig()
	case "paper":
		cfg = eval.PaperConfig()
	case "tiny":
		cfg = eval.TinyConfig()
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	start := time.Now()
	fmt.Fprintf(out, "building study (preset %q, %d series)...\n", cfg.Name, cfg.NumSeries)
	st, err := eval.BuildStudy(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "study ready in %v; DDM accuracy %.2f%% (train) / %.2f%% (test)\n\n",
		time.Since(start).Round(time.Millisecond), 100*st.DDMTrainAccuracy, 100*st.DDMTestAccuracy)

	switch *experiment {
	case "all":
		res, err := st.RunAll()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res)
		if *jsonPath != "" {
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return fmt.Errorf("encoding results: %w", err)
			}
			if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
				return fmt.Errorf("writing %s: %w", *jsonPath, err)
			}
			fmt.Fprintf(out, "results written to %s\n", *jsonPath)
		}
	case "fig4":
		r, err := st.RunFig4()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, r)
	case "table1":
		r, err := st.RunTable1()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, r)
	case "fig5":
		r, err := st.RunFig5()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, r)
	case "fig6":
		r, err := st.RunFig6()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, r)
	case "fig7":
		r, err := st.RunFig7()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, r)
	case "coverage":
		r, err := st.RunCoverage()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, r)
	case "lengths":
		r, err := st.RunLengthSweep(nil)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, r)
	case "ablations":
		bounds, err := st.RunBoundAblation()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, bounds)
		ties, err := st.RunTieBreakAblation()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, ties)
		trees, err := st.RunTreeAblation(nil, nil)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, trees)
	default:
		return fmt.Errorf("unknown experiment %q", *experiment)
	}

	if *rules {
		fmt.Fprintln(out, "\n=== stateless quality impact model ===")
		fmt.Fprintln(out, st.Base.QIM().Rules())
		fmt.Fprintln(out, "=== timeseries-aware quality impact model ===")
		fmt.Fprintln(out, st.TAQIM.Rules())
	}
	fmt.Fprintf(out, "total runtime %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
