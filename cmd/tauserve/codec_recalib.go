// codec_recalib.go extends the reflection-free codec to the recalibration
// endpoint: POST /v1/recalibrate responses — the old/new model version and
// the per-leaf bound deltas of the swap — are rendered with the same
// append-based writers as the hot endpoints, byte-identical to the structs'
// stdlib encoding.
package main

import (
	"strconv"

	"github.com/iese-repro/tauw/internal/dtree"
	"github.com/iese-repro/tauw/internal/recalib"
)

// recalibLeafDelta is one leaf's audit line in the recalibration response.
type recalibLeafDelta struct {
	Leaf     int     `json:"leaf"`
	OldBound float64 `json:"old_bound"`
	NewBound float64 `json:"new_bound"`
	// OnlineCount/OnlineEvents are the evidence offered for the leaf;
	// PriorCount/PriorEvents the calibration statistics it held before.
	OnlineCount  int `json:"online_count"`
	OnlineEvents int `json:"online_events"`
	PriorCount   int `json:"prior_count"`
	PriorEvents  int `json:"prior_events"`
	// Refreshed reports whether the bound was recomputed (evidence met the
	// min-feedback-per-leaf guard) or kept.
	Refreshed bool `json:"refreshed"`
}

// recalibResponse is the body of POST /v1/recalibrate.
type recalibResponse struct {
	// Swapped reports whether a new model revision went live; when false,
	// Reason says which guard refused.
	Swapped    bool   `json:"swapped"`
	Reason     string `json:"reason,omitempty"`
	OldVersion uint64 `json:"old_version"`
	NewVersion uint64 `json:"new_version"`
	// Leaves is the per-leaf delta audit (null when no swap happened).
	Leaves []recalibLeafDelta `json:"leaves"`
}

// recalibResponseFrom shapes a policy report into the wire form.
func recalibResponseFrom(rep recalib.Report) recalibResponse {
	resp := recalibResponse{
		Swapped:    rep.Swapped,
		Reason:     rep.Reason,
		OldVersion: rep.OldVersion,
		NewVersion: rep.NewVersion,
	}
	if rep.Deltas != nil {
		resp.Leaves = make([]recalibLeafDelta, len(rep.Deltas))
		for i, d := range rep.Deltas {
			resp.Leaves[i] = leafDeltaFrom(d)
		}
	}
	return resp
}

func leafDeltaFrom(d dtree.LeafDelta) recalibLeafDelta {
	return recalibLeafDelta{
		Leaf:         d.LeafID,
		OldBound:     d.OldValue,
		NewBound:     d.NewValue,
		OnlineCount:  d.OnlineCount,
		OnlineEvents: d.OnlineEvents,
		PriorCount:   d.PriorCount,
		PriorEvents:  d.PriorEvents,
		Refreshed:    d.Refreshed,
	}
}

// appendRecalibLeafDelta renders one leaf delta; field order and formatting
// match the struct's stdlib encoding.
func appendRecalibLeafDelta(dst []byte, d *recalibLeafDelta) ([]byte, error) {
	var err error
	dst = append(dst, `{"leaf":`...)
	dst = strconv.AppendInt(dst, int64(d.Leaf), 10)
	dst = append(dst, `,"old_bound":`...)
	if dst, err = appendJSONFloat(dst, d.OldBound); err != nil {
		return dst, err
	}
	dst = append(dst, `,"new_bound":`...)
	if dst, err = appendJSONFloat(dst, d.NewBound); err != nil {
		return dst, err
	}
	dst = append(dst, `,"online_count":`...)
	dst = strconv.AppendInt(dst, int64(d.OnlineCount), 10)
	dst = append(dst, `,"online_events":`...)
	dst = strconv.AppendInt(dst, int64(d.OnlineEvents), 10)
	dst = append(dst, `,"prior_count":`...)
	dst = strconv.AppendInt(dst, int64(d.PriorCount), 10)
	dst = append(dst, `,"prior_events":`...)
	dst = strconv.AppendInt(dst, int64(d.PriorEvents), 10)
	dst = append(dst, `,"refreshed":`...)
	dst = strconv.AppendBool(dst, d.Refreshed)
	return append(dst, '}'), nil
}

// appendRecalibResponse renders the recalibration body with the omitempty
// semantics of the struct tags (reason omitted when empty, nil leaves as
// null).
func appendRecalibResponse(dst []byte, r *recalibResponse) ([]byte, error) {
	var err error
	dst = append(dst, `{"swapped":`...)
	dst = strconv.AppendBool(dst, r.Swapped)
	if r.Reason != "" {
		dst = append(dst, `,"reason":`...)
		dst = appendJSONString(dst, r.Reason)
	}
	dst = append(dst, `,"old_version":`...)
	dst = strconv.AppendUint(dst, r.OldVersion, 10)
	dst = append(dst, `,"new_version":`...)
	dst = strconv.AppendUint(dst, r.NewVersion, 10)
	dst = append(dst, `,"leaves":`...)
	if r.Leaves == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i := range r.Leaves {
			if i > 0 {
				dst = append(dst, ',')
			}
			if dst, err = appendRecalibLeafDelta(dst, &r.Leaves[i]); err != nil {
				return dst, err
			}
		}
		dst = append(dst, ']')
	}
	return append(dst, '}'), nil
}
