package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"github.com/iese-repro/tauw/internal/eval"
	"github.com/iese-repro/tauw/internal/simplex"
)

// benchServer builds a served study once (sharing the test fixture's
// sync.Once) and returns a ready httptest server.
func benchServer(b *testing.B, opts ...ServerOption) *httptest.Server {
	b.Helper()
	studyOnce.Do(func() {
		cfg := eval.TinyConfig()
		cfg.NumSeries = 90
		cfg.TrainAugmentations = 3
		cfg.EvalAugmentations = 3
		studyVal, studyErr = eval.BuildStudy(cfg)
	})
	if studyErr != nil {
		b.Fatalf("BuildStudy: %v", studyErr)
	}
	srv, err := NewServer(studyVal.Base, studyVal.TAQIM, simplex.DefaultTSRPolicy(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	benchSrv = srv
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	return ts
}

func benchPost(b *testing.B, url string, body any) *http.Response {
	b.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		b.Fatal(err)
	}
	return resp
}

func benchNewSeries(b *testing.B, ts *httptest.Server) string {
	b.Helper()
	resp := benchPost(b, ts.URL+"/v1/series", struct{}{})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b.Fatalf("new series = %d", resp.StatusCode)
	}
	var created newSeriesResponse
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		b.Fatal(err)
	}
	return created.SeriesID
}

// BenchmarkHTTPSingleStep measures the classic one-step-per-request path:
// the per-step price is a full HTTP round trip plus JSON both ways.
func BenchmarkHTTPSingleStep(b *testing.B) {
	// The bounded buffer keeps per-step cost stationary, so the number
	// measures HTTP+JSON+step, not an ever-growing fusion scan.
	ts := benchServer(b, WithBufferLimit(64))
	id := benchNewSeries(b, ts)
	req := stepRequest{SeriesID: id, Outcome: 14, PixelSize: 160}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := benchPost(b, ts.URL+"/v1/step", req)
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("step = %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// BenchmarkHTTPBatchStep measures the batched path: 64 series advance one
// step in a single request. Reported time is per request; divide by 64 for
// the per-step price to compare against BenchmarkHTTPSingleStep.
func BenchmarkHTTPBatchStep(b *testing.B) {
	const batchSize = 64
	ts := benchServer(b, WithBatchWorkers(4), WithBufferLimit(64))
	req := batchStepRequest{}
	for i := 0; i < batchSize; i++ {
		id := benchNewSeries(b, ts)
		req.Steps = append(req.Steps, stepRequest{SeriesID: id, Outcome: 14, PixelSize: 160})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := benchPost(b, ts.URL+"/v1/steps", req)
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("batch = %d", resp.StatusCode)
		}
		var got batchStepResponse
		err := json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if got.Failed != 0 {
			b.Fatalf("batch failed %d items", got.Failed)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batchSize), "ns/step")
}

// ---- server-side codec benchmarks: the handler without client or socket ----

// discardWriter is the minimal ResponseWriter the handler benchmarks write
// into: headers and body bytes are accepted and dropped.
type discardWriter struct {
	h    http.Header
	code int
	n    int
}

func (w *discardWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header, 4)
	}
	return w.h
}
func (w *discardWriter) WriteHeader(code int) { w.code = code }
func (w *discardWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// benchHandlerServer builds a Server (not an httptest listener) plus n open
// series ids for direct handler invocation.
func benchHandlerServer(b *testing.B, n int, opts ...ServerOption) (http.Handler, []string) {
	b.Helper()
	ts := benchServer(b, opts...)
	ids := make([]string, n)
	for i := range ids {
		ids[i] = benchNewSeries(b, ts)
	}
	// The httptest server and the handler share the Server instance; the
	// benchmark drives the handler directly so no socket or client JSON
	// appears in the measurement.
	return benchSrv.Handler(), ids
}

// benchSrv is the Server behind benchServer's httptest listener, captured so
// handler benchmarks can bypass the socket.
var benchSrv *Server

// BenchmarkServerStepBatch is the server-side price of one 64-item batch
// request: reflection-free decode, pool dispatch, gate, append-based encode,
// one Write — no client JSON, no network. Divide ns/op by 64 (or read the
// ns/step metric) to compare with the HTTP benchmarks.
func BenchmarkServerStepBatch(b *testing.B) {
	const batchSize = 64
	handler, ids := benchHandlerServer(b, batchSize, WithBatchWorkers(4), WithBufferLimit(64))
	req := batchStepRequest{}
	for _, id := range ids {
		req.Steps = append(req.Steps, stepRequest{SeriesID: id, Outcome: 14, PixelSize: 160})
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	httpReq := httptest.NewRequest(http.MethodPost, "/v1/steps", nil)
	var rd bytes.Reader
	w := &discardWriter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(body)
		httpReq.Body = io.NopCloser(&rd)
		w.code = 0
		handler.ServeHTTP(w, httpReq)
		if w.code != http.StatusOK {
			b.Fatalf("batch = %d", w.code)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batchSize), "ns/step")
}

// BenchmarkServerStepSingle is the server-side price of one single-step
// request through the hot codec.
func BenchmarkServerStepSingle(b *testing.B) {
	handler, ids := benchHandlerServer(b, 1, WithBufferLimit(64))
	body, err := json.Marshal(stepRequest{SeriesID: ids[0], Outcome: 14, PixelSize: 160})
	if err != nil {
		b.Fatal(err)
	}
	httpReq := httptest.NewRequest(http.MethodPost, "/v1/step", nil)
	var rd bytes.Reader
	w := &discardWriter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(body)
		httpReq.Body = io.NopCloser(&rd)
		w.code = 0
		handler.ServeHTTP(w, httpReq)
		if w.code != http.StatusOK {
			b.Fatalf("step = %d", w.code)
		}
	}
}

// BenchmarkServerFeedback is the server-side price of one step + one
// ground-truth feedback join through the hot codec — the full monitoring
// round without HTTP. Each iteration serves a fresh step so its feedback is
// never a duplicate.
func BenchmarkServerFeedback(b *testing.B) {
	handler, ids := benchHandlerServer(b, 1, WithBufferLimit(64))
	stepBody, err := json.Marshal(stepRequest{SeriesID: ids[0], Outcome: 14, PixelSize: 160})
	if err != nil {
		b.Fatal(err)
	}
	stepReq := httptest.NewRequest(http.MethodPost, "/v1/step", nil)
	fbReq := httptest.NewRequest(http.MethodPost, "/v1/feedback", nil)
	var stepRd, fbRd bytes.Reader
	w := &discardWriter{}
	// The series is freshly opened, so the timed steps are 1..b.N; the
	// feedback body is re-rendered with the current step number each round.
	fbBody := make([]byte, 0, 128)
	step := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stepRd.Reset(stepBody)
		stepReq.Body = io.NopCloser(&stepRd)
		w.code = 0
		handler.ServeHTTP(w, stepReq)
		if w.code != http.StatusOK {
			b.Fatalf("step = %d", w.code)
		}
		step++
		fbBody = fbBody[:0]
		fbBody = append(fbBody, `{"series_id":"`...)
		fbBody = append(fbBody, ids[0]...)
		fbBody = append(fbBody, `","step":`...)
		fbBody = strconv.AppendInt(fbBody, int64(step), 10)
		fbBody = append(fbBody, `,"truth":14}`...)
		fbRd.Reset(fbBody)
		fbReq.Body = io.NopCloser(&fbRd)
		w.code = 0
		handler.ServeHTTP(w, fbReq)
		if w.code != http.StatusOK {
			b.Fatalf("feedback = %d at step %d", w.code, step)
		}
	}
}

// BenchmarkMetricsScrape is the price of one GET /metrics: shard-counter
// aggregation plus the hand-rolled Prometheus rendering, with monitoring
// state populated. The committed trajectory enrolls it in the alloc-decay
// gate — a steady-state scrape must stay allocation-free.
func BenchmarkMetricsScrape(b *testing.B) {
	handler, ids := benchHandlerServer(b, 8, WithBufferLimit(64))
	// Populate: steps on every series plus feedback so every exposition
	// section renders real data.
	for _, id := range ids {
		for s := 0; s < 4; s++ {
			res, err := benchSrv.pool.StepSeries(id, 14, qualityVec(b))
			if err != nil {
				b.Fatal(err)
			}
			rec, err := benchSrv.pool.TakeFeedbackSeries(id, res.TotalSteps)
			if err != nil {
				b.Fatal(err)
			}
			if err := benchSrv.calib.Observe(s, rec.Uncertainty, rec.Fused != 14); err != nil {
				b.Fatal(err)
			}
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := &discardWriter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.code = 0
		handler.ServeHTTP(w, req)
		if w.code != http.StatusOK {
			b.Fatalf("metrics = %d", w.code)
		}
	}
}

// qualityVec is the fixture quality vector for direct pool calls (nine
// deficit channels at zero plus a healthy pixel size).
func qualityVec(b *testing.B) []float64 {
	b.Helper()
	qf := make([]float64, len(qualityNames)+1)
	qf[len(qf)-1] = 160
	return qf
}

// BenchmarkCodecDecodeBatch isolates the decoder: one 64-item body parsed
// into pooled scratch per op.
func BenchmarkCodecDecodeBatch(b *testing.B) {
	const batchSize = 64
	req := batchStepRequest{}
	quality := map[string]float64{qualityNames[0]: 0.25, qualityNames[3]: 0.75}
	for i := 0; i < batchSize; i++ {
		req.Steps = append(req.Steps, stepRequest{
			SeriesID: fmt.Sprintf("s%d", i+1), Outcome: 14, Quality: quality, PixelSize: 160,
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	var d decoder
	var steps []wireStep
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.reset(body)
		steps, err = d.decodeBatchRequest(steps)
		if err != nil || len(steps) != batchSize {
			b.Fatalf("decode: %v (%d items)", err, len(steps))
		}
	}
}

// BenchmarkCodecEncodeBatch isolates the encoder: one 64-item response
// rendered into a reused buffer per op.
func BenchmarkCodecEncodeBatch(b *testing.B) {
	const batchSize = 64
	resp := batchStepResponse{OK: batchSize}
	bodies := make([]stepResponse, batchSize)
	for i := range bodies {
		bodies[i] = stepResponse{
			SeriesID: fmt.Sprintf("s%d", i+1), FusedOutcome: 14, Uncertainty: 0.0072,
			StatelessU: 0.25, SeriesLen: 30, TotalSteps: 64, Countermeasure: "proceed", Accepted: true,
		}
		resp.Results = append(resp.Results, batchItemResponse{Status: http.StatusOK, Step: &bodies[i]})
	}
	var out []byte
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err = appendBatchStepResponse(out[:0], &resp)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = out
}

// BenchmarkCodecEncodeBatchStdlib is the same response through
// encoding/json — the "before" column for the encoder swap.
func BenchmarkCodecEncodeBatchStdlib(b *testing.B) {
	const batchSize = 64
	resp := batchStepResponse{OK: batchSize}
	bodies := make([]stepResponse, batchSize)
	for i := range bodies {
		bodies[i] = stepResponse{
			SeriesID: fmt.Sprintf("s%d", i+1), FusedOutcome: 14, Uncertainty: 0.0072,
			StatelessU: 0.25, SeriesLen: 30, TotalSteps: 64, Countermeasure: "proceed", Accepted: true,
		}
		resp.Results = append(resp.Results, batchItemResponse{Status: http.StatusOK, Step: &bodies[i]})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(resp); err != nil {
			b.Fatal(err)
		}
	}
}
