package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/iese-repro/tauw/internal/eval"
	"github.com/iese-repro/tauw/internal/simplex"
)

// benchServer builds a served study once (sharing the test fixture's
// sync.Once) and returns a ready httptest server.
func benchServer(b *testing.B, opts ...ServerOption) *httptest.Server {
	b.Helper()
	studyOnce.Do(func() {
		cfg := eval.TinyConfig()
		cfg.NumSeries = 90
		cfg.TrainAugmentations = 3
		cfg.EvalAugmentations = 3
		studyVal, studyErr = eval.BuildStudy(cfg)
	})
	if studyErr != nil {
		b.Fatalf("BuildStudy: %v", studyErr)
	}
	srv, err := NewServer(studyVal.Base, studyVal.TAQIM, simplex.DefaultTSRPolicy(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	return ts
}

func benchPost(b *testing.B, url string, body any) *http.Response {
	b.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		b.Fatal(err)
	}
	return resp
}

func benchNewSeries(b *testing.B, ts *httptest.Server) string {
	b.Helper()
	resp := benchPost(b, ts.URL+"/v1/series", struct{}{})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b.Fatalf("new series = %d", resp.StatusCode)
	}
	var created newSeriesResponse
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		b.Fatal(err)
	}
	return created.SeriesID
}

// BenchmarkHTTPSingleStep measures the classic one-step-per-request path:
// the per-step price is a full HTTP round trip plus JSON both ways.
func BenchmarkHTTPSingleStep(b *testing.B) {
	// The bounded buffer keeps per-step cost stationary, so the number
	// measures HTTP+JSON+step, not an ever-growing fusion scan.
	ts := benchServer(b, WithBufferLimit(64))
	id := benchNewSeries(b, ts)
	req := stepRequest{SeriesID: id, Outcome: 14, PixelSize: 160}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := benchPost(b, ts.URL+"/v1/step", req)
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("step = %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// BenchmarkHTTPBatchStep measures the batched path: 64 series advance one
// step in a single request. Reported time is per request; divide by 64 for
// the per-step price to compare against BenchmarkHTTPSingleStep.
func BenchmarkHTTPBatchStep(b *testing.B) {
	const batchSize = 64
	ts := benchServer(b, WithBatchWorkers(4), WithBufferLimit(64))
	req := batchStepRequest{}
	for i := 0; i < batchSize; i++ {
		id := benchNewSeries(b, ts)
		req.Steps = append(req.Steps, stepRequest{SeriesID: id, Outcome: 14, PixelSize: 160})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := benchPost(b, ts.URL+"/v1/steps", req)
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("batch = %d", resp.StatusCode)
		}
		var got batchStepResponse
		err := json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if got.Failed != 0 {
			b.Fatalf("batch failed %d items", got.Failed)
		}
	}
}
