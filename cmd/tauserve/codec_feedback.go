// codec_feedback.go extends the reflection-free codec (codec.go) to the
// ground-truth feedback endpoint: POST /v1/feedback requests are scanned by
// the same zero-copy decoder, and responses rendered by the same
// append-based writers, so the feedback path inherits the hot endpoints'
// allocation discipline even though it is orders of magnitude colder than
// the step path.
package main

import (
	"errors"
	"strconv"
)

// wireFeedback is one decoded feedback report: the ground truth for one
// step of one series. hasStep/hasTruth record field presence — both are
// required by the contract, and "absent" is not distinguishable from the
// zero value otherwise (0 is a valid truth class).
type wireFeedback struct {
	seriesID string
	step     int
	truth    int
	hasStep  bool
	hasTruth bool
}

// feedbackField maps a feedback-object key to its field number (0 =
// unknown), with the same matching rules as stepField.
func feedbackField(key []byte) int {
	switch string(key) {
	case "series_id":
		return 1
	case "step":
		return 2
	case "truth":
		return 3
	}
	switch {
	case foldEq(key, "series_id"):
		return 1
	case foldEq(key, "step"):
		return 2
	case foldEq(key, "truth"):
		return 3
	}
	return 0
}

// errFeedbackStep / errFeedbackTruth are the missing-required-field errors
// of the feedback contract.
var (
	errFeedbackStep  = errors.New("step is required (the total_steps of the step being judged)")
	errFeedbackTruth = errors.New("truth is required (the ground-truth outcome class)")
)

// decodeFeedbackRequest parses a complete POST /v1/feedback body. Syntax
// follows json.Unmarshal semantics exactly as the step decoder does
// (whitespace, unknown fields, duplicate keys, null no-ops); the
// presence requirements are validated after the parse.
func (d *decoder) decodeFeedbackRequest(out *wireFeedback) error {
	*out = wireFeedback{}
	if isNull, err := d.maybeNull(); isNull || err != nil {
		if err != nil {
			return err
		}
		if err := d.end(); err != nil {
			return err
		}
		return errFeedbackStep
	}
	if d.pos >= len(d.buf) || d.buf[d.pos] != '{' {
		return d.errAt("expected feedback object")
	}
	d.pos++
	d.skipSpace()
	if d.pos < len(d.buf) && d.buf[d.pos] == '}' {
		d.pos++
	} else {
		for {
			d.skipSpace()
			key, err := d.stringBytes()
			if err != nil {
				return err
			}
			field := feedbackField(key)
			d.skipSpace()
			if d.pos >= len(d.buf) || d.buf[d.pos] != ':' {
				return d.errAt("expected ':'")
			}
			d.pos++
			isNull := false
			if field != 0 {
				if isNull, err = d.maybeNull(); err != nil {
					return err
				}
			}
			switch {
			case isNull:
			case field == 1:
				d.skipSpace()
				s, err := d.stringBytes()
				if err != nil {
					return err
				}
				if sameSlice(s, d.scratch) {
					out.seriesID = string(s)
				} else {
					out.seriesID = bytesToString(s)
				}
			case field == 2:
				d.skipSpace()
				if out.step, err = d.int(); err != nil {
					return err
				}
				out.hasStep = true
			case field == 3:
				d.skipSpace()
				if out.truth, err = d.int(); err != nil {
					return err
				}
				out.hasTruth = true
			default:
				if err := d.skipValue(); err != nil {
					return err
				}
			}
			d.skipSpace()
			if d.pos >= len(d.buf) {
				return d.errAt("unterminated object")
			}
			switch d.buf[d.pos] {
			case ',':
				d.pos++
			case '}':
				d.pos++
			default:
				return d.errAt("expected ',' or '}'")
			}
			if d.buf[d.pos-1] == '}' {
				break
			}
		}
	}
	if err := d.end(); err != nil {
		return err
	}
	if !out.hasStep {
		return errFeedbackStep
	}
	if !out.hasTruth {
		return errFeedbackTruth
	}
	return nil
}

// feedbackResponse is the body of a successful POST /v1/feedback: the
// provenance of the estimate the report was joined to, with the verdict.
type feedbackResponse struct {
	SeriesID string `json:"series_id"`
	Step     int    `json:"step"`
	// Correct reports whether the fused outcome served at the step matched
	// the reported truth.
	Correct bool `json:"correct"`
	// FusedOutcome and Uncertainty echo the joined estimate; TAQIMLeaf is
	// its provenance region in the taQIM and ModelVersion the taQIM
	// revision that served it (feedback may arrive after a hot-swap).
	FusedOutcome int     `json:"fused_outcome"`
	Uncertainty  float64 `json:"uncertainty"`
	TAQIMLeaf    int     `json:"taqim_leaf"`
	ModelVersion uint64  `json:"model_version"`
	// DriftAlarm is true while a calibration-drift alarm is active, so
	// feedback clients see degradation without scraping /metrics.
	DriftAlarm bool `json:"drift_alarm"`
}

// appendFeedbackResponse renders the feedback success body; field order and
// formatting match the struct's stdlib encoding.
func appendFeedbackResponse(dst []byte, r *feedbackResponse) ([]byte, error) {
	var err error
	dst = append(dst, `{"series_id":`...)
	dst = appendJSONString(dst, r.SeriesID)
	dst = append(dst, `,"step":`...)
	dst = strconv.AppendInt(dst, int64(r.Step), 10)
	dst = append(dst, `,"correct":`...)
	dst = strconv.AppendBool(dst, r.Correct)
	dst = append(dst, `,"fused_outcome":`...)
	dst = strconv.AppendInt(dst, int64(r.FusedOutcome), 10)
	dst = append(dst, `,"uncertainty":`...)
	if dst, err = appendJSONFloat(dst, r.Uncertainty); err != nil {
		return dst, err
	}
	dst = append(dst, `,"taqim_leaf":`...)
	dst = strconv.AppendInt(dst, int64(r.TAQIMLeaf), 10)
	dst = append(dst, `,"model_version":`...)
	dst = strconv.AppendUint(dst, r.ModelVersion, 10)
	dst = append(dst, `,"drift_alarm":`...)
	dst = strconv.AppendBool(dst, r.DriftAlarm)
	return append(dst, '}'), nil
}
