// metrics.go holds the observability endpoints of the serving layer: POST
// /v1/feedback joins ground-truth reports to served estimates and feeds the
// runtime calibration monitor, and GET /metrics exposes the aggregated
// monitoring state in Prometheus text format. Both run on the reflection-
// free codec and the pooled request scratch, so neither allocates in steady
// state; /metrics aggregates the shard counters on scrape, so the step hot
// path never maintains scrape-shaped state or contends with a scraper.
package main

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/iese-repro/tauw/internal/core"
	"github.com/iese-repro/tauw/internal/xlog"
)

// recalibLog reports recalibration outcomes (swaps are rare,
// operator-relevant events; failures doubly so) as structured
// component=recalib records.
var recalibLog = xlog.New("recalib")

// handleFeedback is the ground-truth ingestion endpoint. The report names a
// series, the step being judged (the total_steps echoed by the step
// response), and the true outcome class; the server joins it to the
// provenance ring's record of what was served at that step and folds the
// verdict into the calibration monitor. Status codes spell out the join
// result so clients can tell remediable conditions apart:
//
//	200 joined (body echoes the judged estimate and the verdict)
//	400 malformed request, or step/truth missing
//	404 unknown or closed series
//	409 duplicate report for an already-judged step
//	410 step no longer joinable (feedback arrived later than the ring
//	    retains, the step never happened, or the series was reset)
//	501 feedback disabled (-feedback-ring 0)
func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.latFeedback.Observe(time.Since(start)) }()
	if !s.adm.feedback.admit(w) {
		return
	}
	defer s.adm.feedback.release()
	sc := getScratch()
	defer sc.release()
	var err error
	sc.body, err = readBody(sc.body, http.MaxBytesReader(w, r.Body, maxStepBodyBytes))
	if err != nil {
		httpError(w, decodeStatus(err), fmt.Errorf("reading request: %w", err))
		return
	}
	sc.dec.reset(sc.body)
	var fb wireFeedback
	if err := sc.dec.decodeFeedbackRequest(&fb); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	resp, status, err := s.joinFeedback(fb.seriesID, fb.step, fb.truth)
	if err != nil {
		httpError(w, status, err)
		return
	}
	sc.out, err = appendFeedbackResponse(sc.out[:0], &resp)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeRaw(w, http.StatusOK, sc.out, "feedback")
}

// joinFeedback performs the ground-truth join shared by POST /v1/feedback
// and the binary transport's feedback frame: resolve the series, join the
// report against the provenance ring, fold the verdict into the calibration
// monitor and the per-leaf evidence, and (when armed) attempt the automatic
// drift response. On failure the returned status carries the HTTP code of
// the condition; the wire dispatch reuses it verbatim, so the two
// transports cannot drift apart on error semantics.
func (s *Server) joinFeedback(seriesID string, step, truth int) (feedbackResponse, int, error) {
	track, err := s.pool.ResolveSeries(seriesID)
	if err != nil {
		return feedbackResponse{}, http.StatusNotFound, fmt.Errorf("unknown series %q", seriesID)
	}
	rec, err := s.pool.TakeFeedback(track, step)
	if err != nil {
		switch {
		case errors.Is(err, core.ErrFeedbackDisabled):
			return feedbackResponse{}, http.StatusNotImplemented, err
		case errors.Is(err, core.ErrDuplicateFeedback):
			return feedbackResponse{}, http.StatusConflict, err
		case errors.Is(err, core.ErrStepUnavailable):
			return feedbackResponse{}, http.StatusGone, err
		case errors.Is(err, core.ErrUnknownTrack):
			// The series closed between resolution and the join.
			return feedbackResponse{}, http.StatusNotFound, fmt.Errorf("unknown series %q", seriesID)
		default:
			return feedbackResponse{}, http.StatusInternalServerError, err
		}
	}
	wrong := rec.Fused != truth
	if err := s.calib.Observe(track, rec.Uncertainty, wrong); err != nil {
		return feedbackResponse{}, http.StatusInternalServerError, err
	}
	// Attribute the verdict to the taQIM region that produced the judged
	// estimate — the per-leaf evidence the recalibration loop refreshes
	// bounds from.
	s.leafStats.Observe(track, rec.TAQIMLeaf, wrong)
	if s.autoRecalib && s.calib.DriftAlarmed() {
		// The drift alarm is active and the operator armed the automatic
		// response: attempt a recalibration swap. The policy's cooldown and
		// min-feedback-per-leaf guards make this cheap to call per feedback
		// while an alarm churns; a successful swap clears the alarm.
		if rep, err := s.recal.TryAuto(); err != nil {
			recalibLog.Error("auto recalibration failed", "err", err)
		} else if rep.Swapped {
			recalibLog.Info("drift alarm triggered recalibration",
				"old_version", rep.OldVersion, "new_version", rep.NewVersion)
		}
	}
	return feedbackResponse{
		SeriesID:     seriesID,
		Step:         rec.Step,
		Correct:      !wrong,
		FusedOutcome: rec.Fused,
		Uncertainty:  rec.Uncertainty,
		TAQIMLeaf:    rec.TAQIMLeaf,
		ModelVersion: rec.ModelVersion,
		DriftAlarm:   s.calib.DriftAlarmed(),
	}, http.StatusOK, nil
}

// handleRecalibrate is the manual recalibration trigger: refresh every taQIM
// leaf bound that has accumulated enough ground-truth feedback, hot-swap the
// refreshed model into the pool, and answer with the old/new version plus
// the per-leaf deltas (the audit trail of the swap). The policy's cooldown
// does not apply to manual triggers; the min-feedback-per-leaf guard does,
// and when no leaf qualifies the response reports swapped=false with the
// reason instead of bumping the version for nothing. The body is rendered by
// the reflection-free codec like every other v1 endpoint.
func (s *Server) handleRecalibrate(w http.ResponseWriter, r *http.Request) {
	drainBody(w, r)
	rep, err := s.recal.Recalibrate()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	if rep.Swapped {
		recalibLog.Info("manual recalibration swapped the model",
			"old_version", rep.OldVersion, "new_version", rep.NewVersion)
	}
	sc := getScratch()
	defer sc.release()
	resp := recalibResponseFrom(rep)
	sc.out, err = appendRecalibResponse(sc.out[:0], &resp)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeRaw(w, http.StatusOK, sc.out, "recalibrate")
}

// handleMetrics renders the Prometheus exposition into the pooled response
// buffer and flushes it with one Write. The scrape path allocates only the
// Content-Type header slot (BenchmarkMetricsScrape records 1 alloc/op,
// which enrolls it in the bench alloc-decay gate): the rendering itself is
// allocation-free, and no Content-Length is set — formatting the length
// would cost two more allocations per scrape and net/http frames the
// response itself.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	sc := getScratch()
	defer sc.release()
	sc.out = s.expo.AppendMetrics(sc.out[:0])
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(sc.out); err != nil {
		logWriteFailure("metrics", http.StatusOK, err)
	}
}
