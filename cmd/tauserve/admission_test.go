// admission_test.go covers the overload-protection layer: the per-endpoint
// limiter's admit/shed state machine at the unit level, and the server-level
// deadline shedding plus its tauw_shed_total exposition.
package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/iese-repro/tauw/internal/eval"
	"github.com/iese-repro/tauw/internal/simplex"
)

// testServerSrv is testServerWith also handing back the *Server for state
// the HTTP surface cannot flip (SetReady).
func testServerSrv(t *testing.T, opts ...ServerOption) (*httptest.Server, *Server) {
	t.Helper()
	studyOnce.Do(func() {
		cfg := eval.TinyConfig()
		cfg.NumSeries = 90
		cfg.TrainAugmentations = 3
		cfg.EvalAugmentations = 3
		studyVal, studyErr = eval.BuildStudy(cfg)
	})
	if studyErr != nil {
		t.Fatalf("BuildStudy: %v", studyErr)
	}
	srv, err := NewServer(studyVal.Base, studyVal.TAQIM, simplex.DefaultTSRPolicy(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// checkShedResponse asserts the recorded response is a well-formed shed: the
// expected status, Retry-After, and the unified JSON error shape.
func checkShedResponse(t *testing.T, rec *httptest.ResponseRecorder, wantCode int) {
	t.Helper()
	if rec.Code != wantCode {
		t.Fatalf("shed status = %d, want %d", rec.Code, wantCode)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var body errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error == "" {
		t.Fatalf("shed body %q is not the {\"error\": ...} shape (%v)", rec.Body.String(), err)
	}
}

func TestLimiterDisabledIsFree(t *testing.T) {
	var l limiter
	l.init("step", 0, 0, 0)
	for i := 0; i < 3; i++ {
		if !l.admit(httptest.NewRecorder()) {
			t.Fatal("disabled limiter refused a request")
		}
		l.release()
	}
}

func TestLimiterQueueFullSheds429(t *testing.T) {
	var l limiter
	l.init("step", 1, 0, 0)
	if !l.admit(httptest.NewRecorder()) {
		t.Fatal("first request refused on an idle limiter")
	}
	rec := httptest.NewRecorder()
	if l.admit(rec) {
		t.Fatal("admitted past the inflight cap with no queue")
	}
	checkShedResponse(t, rec, http.StatusTooManyRequests)
	if got := l.shedQueueFull.Load(); got != 1 {
		t.Fatalf("shedQueueFull = %d, want 1", got)
	}
	l.release()
	if !l.admit(httptest.NewRecorder()) {
		t.Fatal("release did not free the admission slot")
	}
	l.release()
}

func TestLimiterDeadlineSheds503(t *testing.T) {
	var l limiter
	l.init("step", 1, 1, 20*time.Millisecond)
	if !l.admit(httptest.NewRecorder()) {
		t.Fatal("first request refused")
	}
	rec := httptest.NewRecorder()
	start := time.Now()
	if l.admit(rec) {
		t.Fatal("admitted a second request past the cap")
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Fatalf("shed after %v, before the %v admission budget ran out", waited, 20*time.Millisecond)
	}
	checkShedResponse(t, rec, http.StatusServiceUnavailable)
	if got := l.shedDeadline.Load(); got != 1 {
		t.Fatalf("shedDeadline = %d, want 1", got)
	}
	l.release()
}

func TestLimiterQueuedRequestAdmitsOnRelease(t *testing.T) {
	var l limiter
	l.init("step", 1, 1, time.Second)
	if !l.admit(httptest.NewRecorder()) {
		t.Fatal("first request refused")
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		l.release()
	}()
	if !l.admit(httptest.NewRecorder()) {
		t.Fatal("queued request shed although a slot freed within its budget")
	}
	l.release()
	if l.shedQueueFull.Load() != 0 || l.shedDeadline.Load() != 0 {
		t.Fatal("successful queue wait counted as a shed")
	}
}

func TestEachShedVisitsEveryEndpointAndReason(t *testing.T) {
	var a admission
	a.step.init("step", 1, 0, 0)
	a.batch.init("steps", 0, 0, 0)
	a.feedback.init("feedback", 0, 0, 0)
	a.step.shedQueueFull.Store(3)
	got := map[string]uint64{}
	a.EachShed(func(endpoint, reason string, count uint64) {
		got[endpoint+"/"+reason] = count
	})
	want := map[string]uint64{
		"step/queue_full": 3, "step/deadline": 0,
		"steps/queue_full": 0, "steps/deadline": 0,
		"feedback/queue_full": 0, "feedback/deadline": 0,
	}
	if len(got) != len(want) {
		t.Fatalf("visited %d series, want %d: %v", len(got), len(want), got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("series %s = %d, want %d", k, got[k], v)
		}
	}
}

// TestServerDeadlineShedsStep drives the whole HTTP path: with a deadline
// that is always already spent, a step request must be shed with 503 +
// Retry-After in the JSON error shape, and the shed must show up in the
// tauw_shed_total exposition.
func TestServerDeadlineShedsStep(t *testing.T) {
	ts := testServerWith(t, WithAdmission(1, 1), WithRequestTimeout(time.Nanosecond))
	resp := postJSON(t, ts.URL+"/v1/step", stepRequest{
		SeriesID: "s1", Outcome: 1,
		Quality: map[string]float64{}, PixelSize: 100,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("step with spent deadline = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	var body errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		t.Fatalf("shed body is not the error shape (%v)", err)
	}

	metrics, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Body.Close()
	expo, err := io.ReadAll(metrics.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(expo), `tauw_shed_total{endpoint="step",reason="deadline"} 1`) {
		t.Fatalf("shed not exposed:\n%s", expo)
	}
}

// TestShedSeriesExistBeforeFirstShed: the exposition must render every
// endpoint×reason series at zero, so dashboards and alerts can rate() them
// from the first scrape.
func TestShedSeriesExistBeforeFirstShed(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	expo, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`tauw_shed_total{endpoint="step",reason="queue_full"} 0`,
		`tauw_shed_total{endpoint="step",reason="deadline"} 0`,
		`tauw_shed_total{endpoint="steps",reason="queue_full"} 0`,
		`tauw_shed_total{endpoint="steps",reason="deadline"} 0`,
		`tauw_shed_total{endpoint="feedback",reason="queue_full"} 0`,
		`tauw_shed_total{endpoint="feedback",reason="deadline"} 0`,
	} {
		if !strings.Contains(string(expo), line) {
			t.Fatalf("missing %q in exposition:\n%s", line, expo)
		}
	}
}
