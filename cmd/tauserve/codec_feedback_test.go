package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

// stdlibFeedback is the reference shape the differential fuzz decodes
// against; value semantics (not presence) are comparable with the stdlib,
// since encoding/json cannot distinguish an absent int field from zero.
type stdlibFeedback struct {
	SeriesID string `json:"series_id"`
	Step     int    `json:"step"`
	Truth    int    `json:"truth"`
}

// FuzzFeedbackRequestCodec extends the codec's differential-fuzz
// discipline to the feedback decoder: whatever our hand-rolled parser
// accepts, json.Unmarshal must accept with identical values, and our
// required-field rejections (the one documented divergence — stdlib cannot
// express presence) must only ever fire on bodies the stdlib parses fine.
// The success path also round-trips the response encoder through the
// stdlib.
func FuzzFeedbackRequestCodec(f *testing.F) {
	f.Add([]byte(`{"series_id":"s1","step":3,"truth":14}`))
	f.Add([]byte(`{"SERIES_ID":"😀","STEP":1,"Truth":-2,"extra":{"a":[null]}}`))
	f.Add([]byte(`{"step":1,"step":null,"truth":0}`))
	f.Add([]byte(`{"series_id":"s1","truth":14}`))
	f.Add([]byte(`{"series_id":"s1","step":2,"truth":14} junk`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var d decoder
		d.reset(data)
		var fb wireFeedback
		err := d.decodeFeedbackRequest(&fb)
		var ref stdlibFeedback
		stdErr := json.Unmarshal(data, &ref)
		switch {
		case err == nil:
			if stdErr != nil {
				t.Fatalf("ours accepted %q, stdlib rejected: %v", data, stdErr)
			}
			if fb.seriesID != ref.SeriesID || fb.step != ref.Step || fb.truth != ref.Truth {
				t.Fatalf("value divergence on %q: ours (%q,%d,%d), stdlib (%q,%d,%d)",
					data, fb.seriesID, fb.step, fb.truth, ref.SeriesID, ref.Step, ref.Truth)
			}
			resp := feedbackResponse{
				SeriesID: fb.seriesID, Step: fb.step, Correct: true,
				FusedOutcome: fb.truth, Uncertainty: 0.25, TAQIMLeaf: 1,
			}
			out, err := appendFeedbackResponse(nil, &resp)
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(resp)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out, want) {
				t.Fatalf("encoder divergence: %s vs %s", out, want)
			}
		case errors.Is(err, errFeedbackStep), errors.Is(err, errFeedbackTruth):
			// Our documented stricter contract: the body was syntactically
			// fine but a required field never got a non-null value. The
			// stdlib must agree the syntax was fine.
			if stdErr != nil {
				t.Fatalf("presence error %v on %q, but stdlib rejected the syntax too: %v", err, data, stdErr)
			}
		default:
			// Syntax-level rejection; ours may be stricter (trailing data),
			// so no assertion on the stdlib.
		}
	})
}
