package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/iese-repro/tauw/internal/simplex"
	"github.com/iese-repro/tauw/internal/trace"
)

// flightJSON mirrors the /debug/flight body for decoding in tests.
type flightJSON struct {
	Now    int64        `json:"now"`
	Count  int          `json:"count"`
	Events []flightSpan `json:"events"`
}

type flightSpan struct {
	TS     int64  `json:"ts"`
	Kind   string `json:"kind"`
	Status string `json:"status"`
	Shard  uint16 `json:"shard"`
	Series int64  `json:"series"` // signed: series "sN" is track -N
	DurNS  int64  `json:"dur_ns"`
	Arg    uint64 `json:"arg"`
}

type anomalyJSON struct {
	Reason string       `json:"reason"`
	At     int64        `json:"at"`
	Seq    uint64       `json:"seq"`
	Count  int          `json:"count"`
	Events []flightSpan `json:"events"`
}

// TestFlightEncodersMatchStdlib pins the reflection-free dump encoders to
// the stdlib's view of the same values: everything the appender writes must
// parse back field-for-field.
func TestFlightEncodersMatchStdlib(t *testing.T) {
	events := []trace.Event{
		{TS: 1, Kind: trace.KindStep, Status: trace.StatusOK, Shard: 3, Series: 42, Dur: 900, Arg: 1},
		{TS: 2, Kind: trace.KindBreaker, Status: trace.StatusTripped},
		{TS: 3, Kind: trace.KindShed, Status: trace.StatusQueueFull, Arg: trace.EndpointSteps},
		// Series "s7" is track -7: the dump must render the signed value.
		{TS: 4, Kind: trace.KindStep, Status: trace.StatusOK, Series: ^uint64(6)},
	}
	var dump flightJSON
	if err := json.Unmarshal(appendFlightDump(nil, 99, events), &dump); err != nil {
		t.Fatalf("flight dump does not parse: %v", err)
	}
	if dump.Now != 99 || dump.Count != 4 || len(dump.Events) != 4 {
		t.Fatalf("dump header = %+v", dump)
	}
	want := []flightSpan{
		{TS: 1, Kind: "step", Status: "ok", Shard: 3, Series: 42, DurNS: 900, Arg: 1},
		{TS: 2, Kind: "breaker", Status: "tripped"},
		{TS: 3, Kind: "shed", Status: "queue_full", Arg: trace.EndpointSteps},
		{TS: 4, Kind: "step", Status: "ok", Series: -7},
	}
	for i, w := range want {
		if dump.Events[i] != w {
			t.Fatalf("event %d = %+v, want %+v", i, dump.Events[i], w)
		}
	}

	var anom anomalyJSON
	body := appendAnomalyDump(nil, trace.AnomalyInfo{Reason: "breaker_trip", At: 7, Seq: 2}, events[:1])
	if err := json.Unmarshal(body, &anom); err != nil {
		t.Fatalf("anomaly dump does not parse: %v", err)
	}
	if anom.Reason != "breaker_trip" || anom.At != 7 || anom.Seq != 2 || anom.Count != 1 || len(anom.Events) != 1 {
		t.Fatalf("anomaly dump = %+v", anom)
	}

	// Empty dumps render a valid empty array, not a null.
	if got := string(appendFlightDump(nil, 0, nil)); got != `{"now":0,"count":0,"events":[]}` {
		t.Fatalf("empty dump = %s", got)
	}
}

// TestFlightEndpointUnderLoad drives step and feedback traffic from several
// goroutines while /debug/flight is polled: every dump must parse, be
// time-ordered, and contain no torn event (a kind outside the enum would
// decode as "unknown"). Afterwards a Freeze must surface on last-anomaly.
func TestFlightEndpointUnderLoad(t *testing.T) {
	st := testStudy(t)
	rec := trace.New(trace.Config{Rings: 2, RingEvents: 256})
	srv, err := NewServer(st.Base, st.TAQIM, simplex.DefaultTSRPolicy(), WithTrace(rec))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// No anomaly yet: the endpoint must say so, not serve an empty dump.
	resp, err := http.Get(ts.URL + "/debug/flight/last-anomaly")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("last-anomaly before any freeze = %d, want 404", resp.StatusCode)
	}

	series := decode[newSeriesResponse](t, postJSON(t, ts.URL+"/v1/series", struct{}{}))

	const writers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp := postJSON(t, ts.URL+"/v1/step", stepRequest{
					SeriesID: series.SeriesID, Outcome: 14,
					Quality: map[string]float64{"rain": 0.3}, PixelSize: 170,
				})
				resp.Body.Close()
			}
		}()
	}

	for i := 0; i < 20; i++ {
		dump := decode[flightJSON](t, mustGet(t, ts.URL+"/debug/flight"))
		if dump.Count != len(dump.Events) {
			t.Fatalf("dump count %d, %d events", dump.Count, len(dump.Events))
		}
		for j, ev := range dump.Events {
			if j > 0 && ev.TS < dump.Events[j-1].TS {
				t.Fatalf("dump out of order at %d: %d after %d", j, ev.TS, dump.Events[j-1].TS)
			}
			if ev.Kind == "unknown" || ev.Status == "unknown" {
				t.Fatalf("torn event in dump: %+v", ev)
			}
		}
	}
	close(stop)
	wg.Wait()

	rec.Freeze("test_freeze")
	anom := decode[anomalyJSON](t, mustGet(t, ts.URL+"/debug/flight/last-anomaly"))
	if anom.Reason != "test_freeze" || anom.Seq != 1 || len(anom.Events) == 0 {
		t.Fatalf("anomaly after freeze = reason %q seq %d events %d",
			anom.Reason, anom.Seq, len(anom.Events))
	}
	sawStep := false
	for _, ev := range anom.Events {
		if ev.Kind == "step" {
			sawStep = true
			break
		}
	}
	if !sawStep {
		t.Fatal("anomaly snapshot captured no step events from the load window")
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	return resp
}

// TestFlightRoutesAbsentWithoutTrace pins that the debug routes only exist
// when a recorder is wired: an untraced server must 404 them.
func TestFlightRoutesAbsentWithoutTrace(t *testing.T) {
	ts := testServer(t)
	for _, path := range []string{"/debug/flight", "/debug/flight/last-anomaly"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s without trace = %d, want 404", path, resp.StatusCode)
		}
	}
}
