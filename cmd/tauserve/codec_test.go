package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// ------------------------------------------------------- encoder vs stdlib --

// TestAppendJSONFloatMatchesStdlib pins the float formatter byte-for-byte to
// encoding/json across magnitude regimes, including both 'e'-notation edges
// and the negative-exponent cleanup.
func TestAppendJSONFloatMatchesStdlib(t *testing.T) {
	cases := []float64{0, 1, -1, 0.5, 1e-6, 9.999e-7, 1e21, 9.99e20, -1e21,
		1e-300, 1e300, 0.1, 1.0 / 3.0, math.MaxFloat64, math.SmallestNonzeroFloat64,
		42, 1e6, 123456789.123456789, -0.0072}
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 500; i++ {
		f := rng.NormFloat64() * math.Pow(10, float64(rng.IntN(40)-20))
		cases = append(cases, f)
	}
	for _, f := range cases {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := appendJSONFloat(nil, f)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if string(got) != string(want) {
			t.Errorf("float %v: got %s, stdlib %s", f, got, want)
		}
	}
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := appendJSONFloat(nil, f); err == nil {
			t.Errorf("%v: want non-finite error, like json.Marshal", f)
		}
		if _, err := json.Marshal(f); err == nil {
			t.Errorf("%v: stdlib unexpectedly accepts", f)
		}
	}
}

// TestAppendJSONStringMatchesStdlib pins the string escaper byte-for-byte to
// encoding/json, including HTML escapes, control characters, U+2028/U+2029,
// surrogate-pair-worthy runes, and invalid UTF-8 replacement.
func TestAppendJSONStringMatchesStdlib(t *testing.T) {
	cases := []string{
		"", "s1", "plain ascii", `quote " backslash \`, "new\nline\ttab\rret",
		"\x00\x01\x1f", "<script>&amp;</script>", "päöüß", "日本語", "emoji 😀 pair",
		"line\u2028sep\u2029para", "\xff\xfe invalid", "mixed\xc3\x28bad", "\u007f del",
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		got := appendJSONString(nil, s)
		if string(got) != string(want) {
			t.Errorf("string %q: got %s, stdlib %s", s, got, want)
		}
	}
}

// TestEncodeResponsesMatchStdlib renders full response bodies both ways:
// the hand-rolled encoder must be byte-identical to json.Marshal, including
// the omitempty handling of batch items.
func TestEncodeResponsesMatchStdlib(t *testing.T) {
	step := stepResponse{
		SeriesID: "s42", FusedOutcome: 14, Uncertainty: 0.0072, StatelessU: 0.25,
		SeriesLen: 9, TotalSteps: 31, Countermeasure: "warn<&>", Accepted: true,
	}
	wantStep, err := json.Marshal(step)
	if err != nil {
		t.Fatal(err)
	}
	gotStep, err := appendStepResponse(nil, &step)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotStep) != string(wantStep) {
		t.Errorf("step body:\n got %s\nwant %s", gotStep, wantStep)
	}

	batch := batchStepResponse{
		Results: []batchItemResponse{
			{Status: http.StatusOK, Step: &step},
			{Status: http.StatusNotFound, Error: `unknown series "s\u7"`},
			{Status: http.StatusBadRequest, Error: "pixel_size must be positive, got -1"},
		},
		OK: 1, Failed: 2,
	}
	wantBatch, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	gotBatch, err := appendBatchStepResponse(nil, &batch)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotBatch) != string(wantBatch) {
		t.Errorf("batch body:\n got %s\nwant %s", gotBatch, wantBatch)
	}

	// Non-finite uncertainties must fail exactly like the stdlib encoder.
	bad := step
	bad.Uncertainty = math.NaN()
	if _, err := appendStepResponse(nil, &bad); !errors.Is(err, errNonFiniteJSON) {
		t.Errorf("NaN uncertainty: err = %v, want errNonFiniteJSON", err)
	}
	if _, err := json.Marshal(bad); err == nil {
		t.Error("stdlib unexpectedly encodes NaN")
	}
}

// ------------------------------------------------------- decoder vs stdlib --

// stdlibDecodeStep is the reference pipeline the codec replaced: stdlib
// JSON into stepRequest, then qualityFromMap.
func stdlibDecodeStep(data []byte) (stepRequest, []float64, error, error) {
	var req stepRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return req, nil, err, nil
	}
	qf, semErr := qualityFromMap(req.Quality, req.PixelSize)
	return req, qf, nil, semErr
}

// decodeStepBoth runs both decoders and fails the test on any divergence:
// request-level success, semantic item errors, and the decoded values must
// all agree.
func decodeStepBoth(t *testing.T, data []byte) {
	t.Helper()
	var d decoder
	d.reset(data)
	var w wireStep
	ourErr := d.decodeStepRequest(&w)
	req, qf, stdErr, semErr := stdlibDecodeStep(data)
	if (ourErr == nil) != (stdErr == nil) {
		t.Fatalf("decode divergence on %q: ours %v, stdlib %v", data, ourErr, stdErr)
	}
	if ourErr != nil {
		return
	}
	if (w.itemErr == nil) != (semErr == nil) {
		t.Fatalf("semantic divergence on %q: ours %v, stdlib %v", data, w.itemErr, semErr)
	}
	if w.seriesID != req.SeriesID || w.outcome != req.Outcome {
		t.Fatalf("value divergence on %q: ours (%q,%d), stdlib (%q,%d)",
			data, w.seriesID, w.outcome, req.SeriesID, req.Outcome)
	}
	if w.itemErr == nil {
		if len(w.qf) != len(qf) {
			t.Fatalf("qf width divergence on %q: %d vs %d", data, len(w.qf), len(qf))
		}
		for i := range qf {
			if w.qf[i] != qf[i] {
				t.Fatalf("qf[%d] divergence on %q: %g vs %g", i, data, w.qf[i], qf[i])
			}
		}
	}
}

func TestDecodeStepRequestMatchesStdlib(t *testing.T) {
	name := qualityNames[0]
	cases := []string{
		`{"series_id":"s1","outcome":3,"quality":{"` + name + `":0.5},"pixel_size":120}`,
		`{"series_id":"s1","outcome":3,"pixel_size":120}`,
		`{}`,
		`  { "outcome" : -7 , "pixel_size" : 1e2 }  `,
		`{"quality":null,"pixel_size":5,"series_id":"x"}`,
		`{"quality":{},"pixel_size":5}`,
		`{"unknown":{"nested":[1,2,{"a":"b"}],"t":true},"pixel_size":3}`,
		`{"series_id":"esc\"aped\u0041\n","pixel_size":1}`,
		`{"series_id":"\ud83d\ude00","pixel_size":1}`,
		`{"series_id":"\ud800 lone","pixel_size":1}`,
		`{"SERIES_ID":"case fold","PIXEL_size":2,"OUTCOME":9}`,
		`{"pixel_size":0}`,
		`{"pixel_size":-4}`,
		`{"quality":{"` + name + `":1.5},"pixel_size":1}`,
		`{"quality":{"` + name + `":2,"` + name + `":0.5},"pixel_size":1}`,
		`{"quality":{"no-such-factor":0.5},"pixel_size":1}`,
		`{"quality":{"` + name + `":0.25},"quality":{"` + name + `":0.75},"pixel_size":1}`,
		`{"series_id":"a","series_id":"b","pixel_size":1}`,
		`{"outcome":3.5,"pixel_size":1}`,
		`{"outcome":1e3,"pixel_size":1}`,
		`{"outcome":12345678901234567890,"pixel_size":1}`,
		`{"pixel_size":1e999}`,
		`{"pixel_size":01}`,
		`{"pixel_size":.5}`,
		`{"pixel_size":5.}`,
		`{"pixel_size":+5}`,
		`{"series_id":123,"pixel_size":1}`,
		`{"pixel_size":1} trailing`,
		`{"pixel_size":1}{"pixel_size":2}`,
		`[1,2,3]`,
		`null`,
		`{"pixel_size":1`,
		`{"pixel_size":}`,
		`{"series_id":"un` + "\x01" + `safe","pixel_size":1}`,
		``,
		`   `,
	}
	for _, c := range cases {
		decodeStepBoth(t, []byte(c))
	}
}

// TestDecodeBatchCapBindsDuringParse pins the DoS guard: a steps array past
// maxBatchItems must fail while parsing, before the decoder has
// materialised millions of items from a legal 16 MiB body (the scratch
// pool would retain that slice capacity forever), while exactly
// maxBatchItems items still decode.
func TestDecodeBatchCapBindsDuringParse(t *testing.T) {
	build := func(n int) []byte {
		var sb strings.Builder
		sb.WriteString(`{"steps":[`)
		for i := 0; i < n; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(`{}`)
		}
		sb.WriteString(`]}`)
		return []byte(sb.String())
	}
	var d decoder
	d.reset(build(maxBatchItems))
	items, err := d.decodeBatchRequest(nil)
	if err != nil || len(items) != maxBatchItems {
		t.Fatalf("exactly-at-cap batch: err=%v len=%d, want nil/%d", err, len(items), maxBatchItems)
	}
	d.reset(build(maxBatchItems + 1))
	items, err = d.decodeBatchRequest(items[:0])
	if !errors.Is(err, errBatchTooLarge) {
		t.Fatalf("over-cap batch: err=%v, want errBatchTooLarge", err)
	}
	if len(items) > maxBatchItems {
		t.Fatalf("over-cap batch materialised %d items before failing", len(items))
	}
}

// stdlibDecodeBatch mirrors the old batch handler pipeline.
func stdlibDecodeBatch(data []byte) (batchStepRequest, error) {
	var req batchStepRequest
	err := json.Unmarshal(data, &req)
	return req, err
}

func decodeBatchBoth(t *testing.T, data []byte) {
	t.Helper()
	var d decoder
	d.reset(data)
	items, ourErr := d.decodeBatchRequest(nil)
	req, stdErr := stdlibDecodeBatch(data)
	if (ourErr == nil) != (stdErr == nil) {
		t.Fatalf("batch decode divergence on %q: ours %v, stdlib %v", data, ourErr, stdErr)
	}
	if ourErr != nil {
		return
	}
	if len(items) != len(req.Steps) {
		t.Fatalf("batch length divergence on %q: %d vs %d", data, len(items), len(req.Steps))
	}
	for i := range items {
		qf, semErr := qualityFromMap(req.Steps[i].Quality, req.Steps[i].PixelSize)
		if (items[i].itemErr == nil) != (semErr == nil) {
			t.Fatalf("item %d semantic divergence on %q: %v vs %v", i, data, items[i].itemErr, semErr)
		}
		if items[i].seriesID != req.Steps[i].SeriesID || items[i].outcome != req.Steps[i].Outcome {
			t.Fatalf("item %d value divergence on %q", i, data)
		}
		if semErr == nil {
			for j := range qf {
				if items[i].qf[j] != qf[j] {
					t.Fatalf("item %d qf[%d] divergence on %q", i, j, data)
				}
			}
		}
	}
}

func TestDecodeBatchRequestMatchesStdlib(t *testing.T) {
	cases := []string{
		`{"steps":[]}`,
		`{"steps":null}`,
		`{}`,
		`{"steps":[{"series_id":"s1","pixel_size":5}]}`,
		`{"steps":[{"series_id":"s1","pixel_size":5},{"series_id":"s2","outcome":2,"pixel_size":9}]}`,
		`{"extra":1,"steps":[{"pixel_size":5}],"more":[{}]}`,
		`{"steps":[{"pixel_size":5}],"steps":[{"pixel_size":7,"series_id":"dup-replaces"}]}`,
		`{"STEPS":[{"pixel_size":5}]}`,
		`{"steps":[{"pixel_size":-1},{"pixel_size":5}]}`,
		`{"steps":[5]}`,
		`{"steps":{}}`,
		`{"steps":[{}],}`,
		`{"steps":[{}]} x`,
	}
	for _, c := range cases {
		decodeBatchBoth(t, []byte(c))
	}
}

// --------------------------------------------------------------- fuzzing --

// FuzzStepRequestCodec is the differential soundness fuzz: whatever bytes
// the decoder accepts, json.Unmarshal must accept with the same meaning
// (request-level success, per-item semantics, and values), and our encoding
// of the echoed series id must survive a stdlib decode.
func FuzzStepRequestCodec(f *testing.F) {
	name := qualityNames[0]
	f.Add([]byte(`{"series_id":"s1","outcome":3,"quality":{"` + name + `":0.5},"pixel_size":120}`))
	f.Add([]byte(`{"SERIES_id":"\ud83d\ude00","pixel_size":1e-3}`))
	f.Add([]byte(`{"quality":{"` + name + `":2,"` + name + `":0.5},"pixel_size":1}`))
	f.Add([]byte(`{"unknown":[[[{"a":null}]]],"pixel_size":0.25}`))
	f.Add([]byte(`{"pixel_size":1}junk`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var d decoder
		d.reset(data)
		var w wireStep
		if err := d.decodeStepRequest(&w); err != nil {
			// Our decoder may reject; soundness only requires that what we
			// accept, the stdlib accepts identically.
			return
		}
		req, qf, stdErr, semErr := stdlibDecodeStep(data)
		if stdErr != nil {
			t.Fatalf("ours accepted %q, stdlib rejected: %v", data, stdErr)
		}
		if w.seriesID != req.SeriesID || w.outcome != req.Outcome {
			t.Fatalf("value divergence on %q: ours (%q,%d), stdlib (%q,%d)",
				data, w.seriesID, w.outcome, req.SeriesID, req.Outcome)
		}
		if (w.itemErr == nil) != (semErr == nil) {
			t.Fatalf("semantic divergence on %q: ours %v, stdlib %v", data, w.itemErr, semErr)
		}
		if w.itemErr == nil {
			for i := range qf {
				if w.qf[i] != qf[i] {
					t.Fatalf("qf[%d] divergence on %q: %g vs %g", i, data, w.qf[i], qf[i])
				}
			}
			// Encode the echo path and round-trip it through the stdlib.
			resp := stepResponse{SeriesID: w.seriesID, FusedOutcome: w.outcome,
				Uncertainty: 0.5, Countermeasure: "ok"}
			out, err := appendStepResponse(nil, &resp)
			if err != nil {
				t.Fatal(err)
			}
			var back stepResponse
			if err := json.Unmarshal(out, &back); err != nil {
				t.Fatalf("stdlib cannot decode our encoding %q: %v", out, err)
			}
			if back.SeriesID != w.seriesID || back.FusedOutcome != w.outcome {
				t.Fatalf("round trip mangled %q -> %q", w.seriesID, back.SeriesID)
			}
		}
	})
}

// FuzzBatchRequestCodec extends the soundness fuzz to the batch shape and
// the full response round trip: our batch encoding of whatever we decoded
// must be byte-identical to json.Marshal of the equivalent response.
func FuzzBatchRequestCodec(f *testing.F) {
	name := qualityNames[0]
	f.Add([]byte(`{"steps":[{"series_id":"s1","pixel_size":5}]}`))
	f.Add([]byte(`{"steps":[{"pixel_size":-1},{"quality":{"` + name + `":0.5},"pixel_size":5}]}`))
	f.Add([]byte(`{"steps":null,"x":[{}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var d decoder
		d.reset(data)
		items, err := d.decodeBatchRequest(nil)
		if err != nil {
			return
		}
		req, stdErr := stdlibDecodeBatch(data)
		if stdErr != nil {
			t.Fatalf("ours accepted %q, stdlib rejected: %v", data, stdErr)
		}
		if len(items) != len(req.Steps) {
			t.Fatalf("length divergence on %q: %d vs %d", data, len(items), len(req.Steps))
		}
		resp := batchStepResponse{}
		for i := range items {
			_, semErr := qualityFromMap(req.Steps[i].Quality, req.Steps[i].PixelSize)
			if (items[i].itemErr == nil) != (semErr == nil) {
				t.Fatalf("item %d semantic divergence on %q", i, data)
			}
			if items[i].itemErr != nil {
				resp.Results = append(resp.Results, batchItemResponse{
					Status: http.StatusBadRequest, Error: items[i].itemErr.Error()})
				resp.Failed++
				continue
			}
			resp.Results = append(resp.Results, batchItemResponse{
				Status: http.StatusOK,
				Step:   &stepResponse{SeriesID: items[i].seriesID, FusedOutcome: items[i].outcome},
			})
			resp.OK++
		}
		ours, err := appendBatchStepResponse(nil, &resp)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		if string(ours) != string(want) {
			t.Fatalf("batch encoding diverges on %q:\n ours %s\n std  %s", data, ours, want)
		}
	})
}

// FuzzResponseEncode drives the encoder with arbitrary values (including
// non-finite floats): byte-identical output to json.Marshal, or matching
// refusal.
func FuzzResponseEncode(f *testing.F) {
	f.Add("s1", 3, 0.25, 0.5, 7, 9, "warn", true)
	f.Add("", -1, math.NaN(), 0.0, 0, 0, "<&>", false)
	f.Add("\xff\xfe", 1<<40, math.Inf(1), -0.0, -3, 1, "line\u2028brk", true)
	f.Fuzz(func(t *testing.T, id string, outcome int, u, su float64, sl, ts int, cm string, acc bool) {
		// ModelVersion derives from the fuzzed ints (a negative ts wraps to
		// a huge uint64 — exactly the edge the encoder must agree on) so
		// the corpus keeps its original arity.
		resp := stepResponse{SeriesID: id, FusedOutcome: outcome, Uncertainty: u,
			StatelessU: su, SeriesLen: sl, TotalSteps: ts, ModelVersion: uint64(ts) * 31,
			Countermeasure: cm, Accepted: acc}
		ours, ourErr := appendStepResponse(nil, &resp)
		want, stdErr := json.Marshal(resp)
		if (ourErr == nil) != (stdErr == nil) {
			t.Fatalf("encode error divergence: ours %v, stdlib %v", ourErr, stdErr)
		}
		if ourErr == nil && string(ours) != string(want) {
			t.Fatalf("encoding diverges:\n ours %s\n std  %s", ours, want)
		}
	})
}

// ------------------------------------------------------------ write paths --

// failingWriter implements http.ResponseWriter with a Write that always
// fails — the "client vanished mid-response" case.
type failingWriter struct {
	header http.Header
	code   int
}

func (w *failingWriter) Header() http.Header {
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}
func (w *failingWriter) WriteHeader(code int)      { w.code = code }
func (w *failingWriter) Write([]byte) (int, error) { return 0, errors.New("connection lost") }

// TestWriteJSONLogsEncoderErrors pins the satellite fix: writeJSON and
// writeRaw must log write/encode failures instead of dropping them — and
// must rate-limit repeats, so a vanished client's burst is one line plus a
// suppressed count, not a line per write.
func TestWriteJSONLogsEncoderErrors(t *testing.T) {
	var logged []string
	orig := logf
	logf = func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }
	defer func() { logf = orig }()
	// Fresh limiter: the test's endpoints must not inherit (or leak)
	// per-endpoint windows from other tests in the same second.
	origLim := writeFailures
	writeFailures = newLogLimiter(time.Now)
	defer func() { writeFailures = origLim }()

	writeJSON(&failingWriter{}, http.StatusOK, errorResponse{Error: "x"}, "t-json")
	if len(logged) != 1 || !strings.Contains(logged[0], "connection lost") {
		t.Fatalf("writeJSON logged %q, want one entry containing the write error", logged)
	}

	logged = nil
	// Unencodable value: the stdlib encoder itself fails before writing.
	writeJSON(httptest.NewRecorder(), http.StatusOK, math.NaN(), "t-nan")
	if len(logged) != 1 || !strings.Contains(logged[0], "unsupported value") {
		t.Fatalf("writeJSON logged %q, want one entry for the encoder failure", logged)
	}

	logged = nil
	writeRaw(&failingWriter{}, http.StatusOK, []byte(`{}`), "t-raw")
	if len(logged) != 1 || !strings.Contains(logged[0], "connection lost") {
		t.Fatalf("writeRaw logged %q, want one entry containing the write error", logged)
	}

	// A repeat failure on the same endpoint inside the limiter window is
	// suppressed, not logged again.
	logged = nil
	writeRaw(&failingWriter{}, http.StatusOK, []byte(`{}`), "t-raw")
	if len(logged) != 0 {
		t.Fatalf("writeRaw logged %q for a rate-limited repeat failure", logged)
	}

	// The success path must not log.
	logged = nil
	rec := httptest.NewRecorder()
	writeRaw(rec, http.StatusCreated, []byte(`{"ok":true}`), "t-ok")
	if len(logged) != 0 {
		t.Fatalf("writeRaw logged %q on success", logged)
	}
	if rec.Code != http.StatusCreated || rec.Body.String() != `{"ok":true}` {
		t.Fatalf("writeRaw wrote (%d, %q)", rec.Code, rec.Body.String())
	}
	if cl := rec.Header().Get("Content-Length"); cl != "11" {
		t.Fatalf("Content-Length = %q, want 11", cl)
	}
}
