// chaos_test.go is the fault-tolerance acceptance test behind the CI chaos
// job: a real tauserve binary with fault injection armed is driven over HTTP
// while its store is broken out from under it and an overload burst hammers
// the admission gate. Step traffic must keep answering 200 losslessly while
// the circuit breaker trips into degraded mode (observable on /readyz and
// tauw_degraded), every shed request must be a clean 429/503 with
// Retry-After, and once the store heals and the process drains, a restart
// must continue the series exactly where it stopped — nothing served during
// the fault window may be lost.
package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// dumpFlightOnFailure registers a cleanup that, when the test has failed,
// fetches the child's flight-recorder dumps and writes them into
// $FLIGHT_DUMP_DIR — the CI chaos and crash-recovery jobs upload that
// directory as an artifact, so a red run ships the seconds before the
// failure along with the log. Best effort: by cleanup time the child may
// already be gone.
func dumpFlightOnFailure(t *testing.T, base string) {
	t.Helper()
	dir := os.Getenv("FLIGHT_DUMP_DIR")
	if dir == "" {
		return
	}
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		client := &http.Client{Timeout: 2 * time.Second}
		prefix := strings.ReplaceAll(t.Name(), "/", "_")
		for _, ep := range []struct{ path, name string }{
			{"/debug/flight", "flight.json"},
			{"/debug/flight/last-anomaly", "last-anomaly.json"},
		} {
			resp, err := client.Get(base + ep.path)
			if err != nil {
				continue
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				continue
			}
			name := prefix + "-" + ep.name
			if err := os.WriteFile(filepath.Join(dir, name), body, 0o644); err != nil {
				t.Logf("writing flight dump %s: %v", name, err)
			}
		}
	})
}

// chaosFault reprograms the store fault plan through the debug endpoint.
func chaosFault(t *testing.T, base string, req map[string]any) {
	t.Helper()
	postJSONBody(t, base+"/debug/fault", req, nil)
}

// waitLog polls the child's log for a substring (log lines can lag the
// metric that announced the same event).
func (p *serveProc) waitLog(t *testing.T, substr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Contains(p.log.String(), substr) {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("log never contained %q:\n%s", substr, p.log.String())
}

// shedMetricTotal sums every labelled tauw_shed_total series in /metrics.
func shedMetricTotal(t *testing.T, base string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "tauw_shed_total{") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("unparseable shed sample %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("parsing shed sample %q: %v", line, err)
		}
		total += v
	}
	return total
}

// chaosBurst fires one overload wave: 64 concurrent batch requests against a
// 1-inflight/1-queued admission window. Every response must be either a
// success or a clean shed (429/503 with Retry-After); anything else — a bare
// 5xx, a transport error — fails the test. Returns the shed count.
func chaosBurst(t *testing.T, base, seriesID string) int {
	t.Helper()
	items := make([]stepRequest, 1024)
	for i := range items {
		items[i] = stepRequest{
			SeriesID:  seriesID,
			Outcome:   14,
			Quality:   map[string]float64{"rain": 0.2},
			PixelSize: 170,
		}
	}
	body, err := json.Marshal(batchStepRequest{Steps: items})
	if err != nil {
		t.Fatal(err)
	}
	const parallel = 64
	codes := make([]int, parallel)
	retryAfter := make([]string, parallel)
	var wg sync.WaitGroup
	for g := 0; g < parallel; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/steps", "application/json", bytes.NewReader(body))
			if err != nil {
				codes[g] = -1
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
			resp.Body.Close()
			codes[g] = resp.StatusCode
			retryAfter[g] = resp.Header.Get("Retry-After")
		}(g)
	}
	wg.Wait()
	shed := 0
	for g, code := range codes {
		switch code {
		case http.StatusOK:
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			shed++
			if retryAfter[g] != "1" {
				t.Fatalf("shed response %d carried Retry-After %q, want \"1\"", code, retryAfter[g])
			}
		case -1:
			t.Fatal("burst request failed at the transport level")
		default:
			t.Fatalf("burst answered %d — neither a success nor a clean shed", code)
		}
	}
	return shed
}

func TestChaosStoreFaultsAndOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level test")
	}
	bin := buildServeBinary(t)
	stateDir := t.TempDir()
	addr := freeAddr(t)
	base := "http://" + addr

	// ---- Phase 1: healthy serving with the chaos harness armed. ----------
	p1 := startServe(t, bin, addr, stateDir,
		"-fault-inject",
		"-breaker-threshold", "2",
		"-breaker-probe", "100ms",
		"-store-retry-attempts", "2",
		"-store-retry-base", "1ms",
		"-max-inflight", "1",
		"-admission-queue", "1",
		"-request-timeout", "500ms",
	)
	p1.waitReady(t, base)
	p1.waitLog(t, "fault injection ARMED")
	dumpFlightOnFailure(t, base)

	var victim, burstSeries newSeriesResponse
	postJSONBody(t, base+"/v1/series", struct{}{}, &victim)
	postJSONBody(t, base+"/v1/series", struct{}{}, &burstSeries)
	steps := 0
	// step serves one request on the victim series and requires lossless
	// continuity: TotalSteps tracks our count exactly through every phase.
	step := func() {
		steps++
		if res := crStepOnce(t, base, victim.SeriesID); res.TotalSteps != steps {
			t.Fatalf("TotalSteps %d after %d steps — a served step was lost", res.TotalSteps, steps)
		}
	}
	for i := 0; i < 10; i++ {
		step()
	}
	waitMetricAtLeast(t, base, "tauw_checkpoint_flushes_total", 1)

	// ---- Phase 2: break every store operation. ---------------------------
	chaosFault(t, base, map[string]any{"op": "all", "count": -1})
	// Steps must keep answering 200 while flush cycles fail behind them (the
	// hot path never blocks on durability) until the breaker trips.
	deadline := time.Now().Add(30 * time.Second)
	for metricValue(t, base, "tauw_degraded") < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never tripped:\n%s", p1.log.String())
		}
		step()
		time.Sleep(5 * time.Millisecond)
	}
	if got := metricValue(t, base, "tauw_store_errors_total"); got < 1 {
		t.Fatalf("tauw_store_errors_total = %g with a dead store", got)
	}
	if got := metricValue(t, base, "tauw_degraded_entered_total"); got < 1 {
		t.Fatalf("tauw_degraded_entered_total = %g after the breaker tripped", got)
	}
	// Degraded keeps the instance in rotation: /readyz answers 200 with the
	// state in the body, not a 503 that would eject it from the LB.
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(ready)) != "degraded" {
		t.Fatalf("degraded /readyz = %d %q, want 200 \"degraded\"", resp.StatusCode, ready)
	}
	// Feedback and recalibration keep serving from RAM.
	postJSONBody(t, base+"/v1/feedback",
		map[string]any{"series_id": victim.SeriesID, "step": 3, "truth": 14}, nil)
	postJSONBody(t, base+"/v1/recalibrate", struct{}{}, nil)
	for i := 0; i < 10; i++ {
		step()
	}
	// The breaker trip froze an anomaly snapshot: /debug/flight/last-anomaly
	// must hold the window around the trip — the failed store attempts and
	// the breaker transition itself. Checked before the overload burst so a
	// later freeze cannot replace the snapshot under assertion.
	anomResp, err := http.Get(base + "/debug/flight/last-anomaly")
	if err != nil {
		t.Fatal(err)
	}
	anomBody, err := io.ReadAll(anomResp.Body)
	anomResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if anomResp.StatusCode != http.StatusOK || len(anomBody) == 0 {
		t.Fatalf("last-anomaly after breaker trip = %d (%d bytes), want a populated 200",
			anomResp.StatusCode, len(anomBody))
	}
	for _, want := range []string{
		`"reason":"breaker_trip"`,
		`"kind":"breaker"`, `"status":"tripped"`, // the transition itself
		`"kind":"retry"`, `"status":"error"`, // the store failures before it
	} {
		if !strings.Contains(string(anomBody), want) {
			t.Fatalf("anomaly snapshot missing %s:\n%s", want, anomBody)
		}
	}

	// ---- Phase 3: overload burst while degraded. -------------------------
	// Saturation is probabilistic (requests could in principle serialise),
	// so retry the wave; with 64 concurrent requests against a 1+1 window
	// one wave is virtually always enough.
	shed := 0
	for attempt := 0; attempt < 5 && shed == 0; attempt++ {
		shed = chaosBurst(t, base, burstSeries.SeriesID)
	}
	if shed == 0 {
		t.Fatal("five overload waves never shed a request")
	}
	if got := shedMetricTotal(t, base); got < float64(shed) {
		t.Fatalf("tauw_shed_total sums to %g, want >= %d observed sheds", got, shed)
	}

	// ---- Phase 4: heal; the breaker must clear via a recovery checkpoint. -
	chaosFault(t, base, map[string]any{"clear": true})
	deadline = time.Now().Add(30 * time.Second)
	for metricValue(t, base, "tauw_degraded") > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never cleared after the store healed:\n%s", p1.log.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	p1.waitLog(t, "degraded mode cleared")
	if got := metricValue(t, base, "tauw_checkpoint_total"); got < 1 {
		t.Fatalf("breaker cleared without a recovery checkpoint (%g)", got)
	}
	step()

	// ---- Phase 5: drain, restart clean, prove nothing was lost. ----------
	if err := p1.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p1.cmd.Wait(); err != nil {
		t.Fatalf("graceful shutdown exit: %v\n%s", err, p1.log.String())
	}
	if !strings.Contains(p1.log.String(), "final checkpoint written") {
		t.Fatalf("drain log missing final checkpoint:\n%s", p1.log.String())
	}

	p2 := startServe(t, bin, addr, stateDir)
	p2.waitReady(t, base)
	// Every victim step served across the fault window — flushes were failing
	// for much of it — must have reached the drain checkpoint: the restarted
	// process continues at exactly steps+1.
	if res := crStepOnce(t, base, victim.SeriesID); res.TotalSteps != steps+1 {
		t.Fatalf("post-restart TotalSteps %d, want %d — the fault window lost state\n%s",
			res.TotalSteps, steps+1, p2.log.String())
	}
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p2.cmd.Wait(); err != nil {
		t.Fatalf("final shutdown exit: %v\n%s", err, p2.log.String())
	}
}
