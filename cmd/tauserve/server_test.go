package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/iese-repro/tauw/internal/eval"
	"github.com/iese-repro/tauw/internal/simplex"
)

var (
	studyOnce sync.Once
	studyVal  *eval.Study
	studyErr  error
)

// testStudy builds (once) and returns the shared calibrated study fixture.
func testStudy(t *testing.T) *eval.Study {
	t.Helper()
	studyOnce.Do(func() {
		cfg := eval.TinyConfig()
		cfg.NumSeries = 90
		cfg.TrainAugmentations = 3
		cfg.EvalAugmentations = 3
		studyVal, studyErr = eval.BuildStudy(cfg)
	})
	if studyErr != nil {
		t.Fatalf("BuildStudy: %v", studyErr)
	}
	return studyVal
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	st := testStudy(t)
	srv, err := NewServer(st.Base, st.TAQIM, simplex.DefaultTSRPolicy())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestServerLifecycle(t *testing.T) {
	ts := testServer(t)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/v1/series", struct{}{})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("new series = %d", resp.StatusCode)
	}
	created := decode[newSeriesResponse](t, resp)
	if created.SeriesID == "" {
		t.Fatal("empty series id")
	}

	// Stream a clean, consistent series: uncertainty must fall and the
	// series length must advance.
	var prevU float64 = 2
	for step := 1; step <= 5; step++ {
		resp := postJSON(t, ts.URL+"/v1/step", stepRequest{
			SeriesID:  created.SeriesID,
			Outcome:   14,
			Quality:   map[string]float64{"rain": 0, "darkness": 0.05},
			PixelSize: 200,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("step %d = %d", step, resp.StatusCode)
		}
		got := decode[stepResponse](t, resp)
		if got.SeriesLen != step {
			t.Errorf("step %d: series len %d", step, got.SeriesLen)
		}
		if got.TotalSteps != step {
			t.Errorf("step %d: total steps %d (must equal series len without a buffer limit)", step, got.TotalSteps)
		}
		if got.FusedOutcome != 14 {
			t.Errorf("step %d: fused outcome %d", step, got.FusedOutcome)
		}
		if got.Uncertainty < 0 || got.Uncertainty > 1 {
			t.Errorf("step %d: uncertainty %g", step, got.Uncertainty)
		}
		if got.Uncertainty > prevU+1e-9 && step > 2 {
			t.Logf("step %d: uncertainty rose from %g to %g (allowed but unusual)", step, prevU, got.Uncertainty)
		}
		prevU = got.Uncertainty
		if got.Countermeasure == "" {
			t.Error("missing countermeasure")
		}
	}

	// Stats must reflect the gated steps and the active session.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decode[statsResponse](t, resp)
	if stats.Gated != 5 {
		t.Errorf("gated = %d, want 5", stats.Gated)
	}
	if stats.ActiveSeries != 1 {
		t.Errorf("active = %d, want 1", stats.ActiveSeries)
	}

	// End the series.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/series/"+created.SeriesID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete = %d", resp.StatusCode)
	}
	// Double delete is a 404.
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete = %d", resp.StatusCode)
	}
}

// TestServerBufferLimitReportsBothCounts pins the eviction semantics at the
// API surface: with a -buffer-limit ring, series_len saturates at the limit
// (the taQF window) while total_steps keeps counting every step.
func TestServerBufferLimitReportsBothCounts(t *testing.T) {
	testServer(t) // ensures the shared study fixture is built
	srv, err := NewServer(studyVal.Base, studyVal.TAQIM, simplex.DefaultTSRPolicy(), WithBufferLimit(3))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp := postJSON(t, ts.URL+"/v1/series", struct{}{})
	created := decode[newSeriesResponse](t, resp)
	for step := 1; step <= 8; step++ {
		resp := postJSON(t, ts.URL+"/v1/step", stepRequest{
			SeriesID:  created.SeriesID,
			Outcome:   14,
			Quality:   map[string]float64{"rain": 0.1},
			PixelSize: 150,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("step %d = %d", step, resp.StatusCode)
		}
		got := decode[stepResponse](t, resp)
		wantLen := step
		if wantLen > 3 {
			wantLen = 3
		}
		if got.SeriesLen != wantLen {
			t.Errorf("step %d: series_len %d, want %d (saturated window)", step, got.SeriesLen, wantLen)
		}
		if got.TotalSteps != step {
			t.Errorf("step %d: total_steps %d, want %d", step, got.TotalSteps, step)
		}
	}
}

func TestServerValidation(t *testing.T) {
	ts := testServer(t)

	// Unknown session.
	resp := postJSON(t, ts.URL+"/v1/step", stepRequest{SeriesID: "nope", Outcome: 1, PixelSize: 100})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown series = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// Create one session for the bad-input cases.
	resp = postJSON(t, ts.URL+"/v1/series", struct{}{})
	created := decode[newSeriesResponse](t, resp)

	badCases := []stepRequest{
		{SeriesID: created.SeriesID, Outcome: 1, PixelSize: 0},
		{SeriesID: created.SeriesID, Outcome: 1, PixelSize: 100, Quality: map[string]float64{"bogus": 0.5}},
		{SeriesID: created.SeriesID, Outcome: 1, PixelSize: 100, Quality: map[string]float64{"rain": 1.5}},
	}
	for i, bad := range badCases {
		resp := postJSON(t, ts.URL+"/v1/step", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad case %d = %d, want 400", i, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Malformed JSON.
	r, err := http.Post(ts.URL+"/v1/step", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON = %d, want 400", r.StatusCode)
	}
}

func TestServerRulesEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/model/rules")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	if !strings.Contains(body, "quality impact model") || !strings.Contains(body, "leaf") {
		t.Errorf("rules output unexpected:\n%s", body)
	}
}

func TestServerLeavesEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/model/leaves")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var leaves []struct {
		LeafID       int      `json:"leaf_id"`
		Uncertainty  float64  `json:"uncertainty"`
		CalibSamples int      `json:"calib_samples"`
		Path         []string `json:"path"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&leaves); err != nil {
		t.Fatal(err)
	}
	if len(leaves) == 0 {
		t.Fatal("no leaves reported")
	}
	for _, l := range leaves {
		if l.Uncertainty < 0 || l.Uncertainty > 1 {
			t.Errorf("leaf %d uncertainty %g invalid", l.LeafID, l.Uncertainty)
		}
		if l.CalibSamples <= 0 {
			t.Errorf("leaf %d without calibration evidence", l.LeafID)
		}
	}
}

func TestServerConstructorValidation(t *testing.T) {
	if _, err := NewServer(nil, nil, simplex.DefaultTSRPolicy()); err == nil {
		t.Error("nil models must fail")
	}
}

func TestServerConcurrentSessions(t *testing.T) {
	ts := testServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSONNoT(ts.URL+"/v1/series", struct{}{})
			if resp == nil {
				errs <- fmt.Errorf("create failed")
				return
			}
			var created newSeriesResponse
			if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			for i := 0; i < 10; i++ {
				r := postJSONNoT(ts.URL+"/v1/step", stepRequest{
					SeriesID:  created.SeriesID,
					Outcome:   i % 3,
					PixelSize: 150,
				})
				if r == nil || r.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("step failed")
					return
				}
				r.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func postJSONNoT(url string, body any) *http.Response {
	data, err := json.Marshal(body)
	if err != nil {
		return nil
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return nil
	}
	return resp
}
