// errors_test.go pins the unified error contract: every 4xx/5xx on every
// endpoint answers application/json with an {"error": "..."} body — including
// the router's own 404/405 (with a correct Allow header) and the body-size
// 413, which the stock ServeMux and MaxBytesReader would otherwise answer in
// text/plain.
package main

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func TestErrorResponseShape(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		name, method, path, body string
		wantStatus               int
		wantAllow                string
	}{
		{"step bad json", "POST", "/v1/step", "{", http.StatusBadRequest, ""},
		{"step unknown series", "POST", "/v1/step",
			`{"series_id":"nope","outcome":1,"quality":{},"pixel_size":100}`, http.StatusNotFound, ""},
		{"step quality out of range", "POST", "/v1/step",
			`{"series_id":"nope","outcome":1,"quality":{"rain":7},"pixel_size":100}`, http.StatusBadRequest, ""},
		{"step oversized body", "POST", "/v1/step",
			`{"series_id":"` + strings.Repeat("x", maxStepBodyBytes+1) + `"}`, http.StatusRequestEntityTooLarge, ""},
		{"batch bad json", "POST", "/v1/steps", `{"steps":`, http.StatusBadRequest, ""},
		{"batch empty", "POST", "/v1/steps", `{"steps":[]}`, http.StatusBadRequest, ""},
		{"feedback unknown series", "POST", "/v1/feedback",
			`{"series_id":"nope","step":1,"truth":1}`, http.StatusNotFound, ""},
		{"delete unknown series", "DELETE", "/v1/series/nope", "", http.StatusNotFound, ""},
		{"series path too deep", "DELETE", "/v1/series/a/b", "", http.StatusNotFound, ""},
		{"unknown endpoint", "GET", "/v1/nope", "", http.StatusNotFound, ""},
		{"stats wrong method", "POST", "/v1/stats", "", http.StatusMethodNotAllowed, "GET, HEAD"},
		{"step wrong method", "GET", "/v1/step", "", http.StatusMethodNotAllowed, "POST"},
		{"series wrong method", "GET", "/v1/series", "", http.StatusMethodNotAllowed, "POST"},
		{"metrics wrong method", "DELETE", "/metrics", "", http.StatusMethodNotAllowed, "GET, HEAD"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if tc.body != "" {
				req.Header.Set("Content-Type", "application/json")
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type = %q, want application/json", ct)
			}
			var body errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("error body is not JSON: %v", err)
			}
			if body.Error == "" {
				t.Fatal("error body has an empty error field")
			}
			if tc.wantAllow != "" {
				if got := resp.Header.Get("Allow"); got != tc.wantAllow {
					t.Fatalf("Allow = %q, want %q", got, tc.wantAllow)
				}
			}
		})
	}
}

// TestReadyzDrainingJSON: the drain-time 503 speaks the same error shape as
// every other failure, so probes and humans parse one format.
func TestReadyzDrainingJSON(t *testing.T) {
	ts, srv := testServerSrv(t)
	srv.SetReady(false)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", resp.StatusCode)
	}
	var body errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error != "draining" {
		t.Fatalf("draining readyz body = %+v (%v), want {\"error\":\"draining\"}", body, err)
	}
}
