// bench_wire_test.go measures the binary transport end to end over real
// loopback TCP: a live listener, the wire client, full frames both ways.
// The pipelined step benchmark is the transport's headline number — with
// many callers in flight per connection the per-op cost collapses to the
// server's dispatch cost plus an amortised fraction of one syscall, which
// is what the transport exists to buy over per-request HTTP.
package main

import (
	"context"
	"net"
	"testing"
	"time"

	"github.com/iese-repro/tauw/internal/augment"
	"github.com/iese-repro/tauw/internal/simplex"
	"github.com/iese-repro/tauw/internal/wire"
)

// benchWire builds a served study, attaches a binary listener on loopback,
// and returns a connected client.
func benchWire(b *testing.B) *wire.Client {
	b.Helper()
	benchServer(b) // builds studyVal and benchSrv
	srv, err := NewServer(studyVal.Base, studyVal.TAQIM, simplex.DefaultTSRPolicy())
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.ServeWire(ln) //nolint:errcheck // drain shuts it down
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.ShutdownWire(ctx) //nolint:errcheck // best-effort bench cleanup
	})
	c, err := wire.Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

func benchQuality() []float64 {
	q := make([]float64, len(augment.Names())+1)
	q[2] = 0.2
	q[len(q)-1] = 200
	return q
}

// BenchmarkWireStepPipelined is the transport's operating point: many
// concurrent callers share one connection, so requests pipeline and
// responses coalesce. ns/op is the per-step cost under that regime and the
// alloc counters must stay at zero — both sides run on pooled buffers.
func BenchmarkWireStepPipelined(b *testing.B) {
	c := benchWire(b)
	b.SetParallelism(32)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id, err := c.OpenSeries()
		if err != nil {
			b.Error(err)
			return
		}
		quality := benchQuality()
		var res wire.StepResult
		for pb.Next() {
			if err := c.Step(id, 14, quality, &res); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkWireStepSerial is the worst case: one caller, strict
// request/response lockstep, so every step pays a full round trip of
// syscalls. The spread to BenchmarkWireStepPipelined is the value of
// pipelining, not a regression.
func BenchmarkWireStepSerial(b *testing.B) {
	c := benchWire(b)
	id, err := c.OpenSeries()
	if err != nil {
		b.Fatal(err)
	}
	quality := benchQuality()
	var res wire.StepResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Step(id, 14, quality, &res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireBatchStep sends 512-item batch frames; ns/op divided by 512
// is the per-item cost with framing amortised across the batch.
func BenchmarkWireBatchStep(b *testing.B) {
	const batchSize = 512
	c := benchWire(b)
	quality := benchQuality()
	items := make([]wire.StepRequest, batchSize)
	for i := range items {
		id, err := c.OpenSeries()
		if err != nil {
			b.Fatal(err)
		}
		items[i] = wire.StepRequest{SeriesID: id, Outcome: 14, Quality: quality}
	}
	out := make([]wire.BatchItemResult, batchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.StepBatch(items, out); err != nil {
			b.Fatal(err)
		}
		if out[0].Status != wire.StatusOK {
			b.Fatalf("item 0 status %d: %s", out[0].Status, out[0].Err)
		}
	}
}

// BenchmarkWireFeedback measures one step plus its ground-truth join over
// the binary transport, mirroring BenchmarkServerFeedback's step+feedback
// round (stepping inside the loop keeps every feedback joinable regardless
// of the provenance ring size).
func BenchmarkWireFeedback(b *testing.B) {
	c := benchWire(b)
	id, err := c.OpenSeries()
	if err != nil {
		b.Fatal(err)
	}
	quality := benchQuality()
	var res wire.StepResult
	var fb wire.FeedbackResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Step(id, 14, quality, &res); err != nil {
			b.Fatal(err)
		}
		if err := c.Feedback(id, res.TotalSteps, 14, &fb); err != nil {
			b.Fatal(err)
		}
	}
}
