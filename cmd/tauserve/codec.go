// codec.go is the reflection-free JSON codec for the serving hot path. The
// two hot endpoints (POST /v1/step and POST /v1/steps) have fixed
// request/response shapes, so they do not need encoding/json's reflective
// walk: requests are parsed by a hand-rolled scanner straight into pooled
// scratch (the quality object is resolved into the wrapper's factor vector
// during the parse — the intermediate map never exists), and responses are
// built with append-based writers into a pooled buffer flushed with a single
// Write. Cold endpoints keep the stdlib encoder.
//
// The decoder implements json.Unmarshal semantics for the shapes it
// understands: arbitrary whitespace, unknown fields (skipped, any value
// shape), duplicate keys (last wins; duplicate quality objects merge, as
// stdlib merges into an existing map), escaped strings including surrogate
// pairs, and strict JSON number grammar. Anything it accepts, the stdlib
// accepts with the same meaning — enforced by differential fuzz tests. It is
// stricter than the old json.Decoder-based handler in exactly one way:
// trailing non-whitespace after the top-level value is rejected, as
// json.Unmarshal would.
package main

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"unicode/utf16"
	"unicode/utf8"
	"unsafe"

	"github.com/iese-repro/tauw/internal/augment"
	"github.com/iese-repro/tauw/internal/core"
)

// qualityNames is the fixed deficit-channel name set, index-aligned with
// qualityIndex and the wrapper's factor vector.
var qualityNames = augment.Names()

// ---------------------------------------------------------------- encoder --

// errNonFiniteJSON mirrors encoding/json's refusal to encode NaN and ±Inf:
// the hot-path encoder must not invent values the stdlib would reject.
var errNonFiniteJSON = errors.New("tauserve: unsupported value: non-finite float")

// appendJSONFloat appends f exactly as encoding/json renders float64 values
// (shortest form, 'e' notation outside [1e-6, 1e21) with the exponent's
// leading zero trimmed), or fails for non-finite values as Marshal does.
func appendJSONFloat(dst []byte, f float64) ([]byte, error) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return dst, errNonFiniteJSON
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, nil
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a quoted JSON string with encoding/json's
// value semantics: control characters are escaped, invalid UTF-8 is replaced
// with U+FFFD, and the HTML-unsafe characters <, >, & are escaped so the
// bytes match what the stdlib encoder would emit for the same string.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); {
		b := s[i]
		if b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				dst = append(dst, b)
				i++
				continue
			}
			switch b {
			case '"':
				dst = append(dst, '\\', '"')
			case '\\':
				dst = append(dst, '\\', '\\')
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xf])
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			// The stdlib writes the replacement character as an escape
			// sequence, not as raw UTF-8.
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i++
			continue
		}
		// U+2028 and U+2029 are escaped by the stdlib for JS embedding.
		if r == '\u2028' || r == '\u2029' {
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[r&0xf])
			i += size
			continue
		}
		dst = append(dst, s[i:i+size]...)
		i += size
	}
	return append(dst, '"')
}

// appendStepResponse renders the single-step success body; field order and
// float formatting match the struct's stdlib encoding.
// appendErrorResponse renders the unified error body {"error": msg} —
// the shape of every 4xx/5xx the server writes. String encoding cannot
// fail, so unlike the response encoders it returns no error: httpError
// must never itself need an error path.
func appendErrorResponse(dst []byte, msg string) []byte {
	dst = append(dst, `{"error":`...)
	dst = appendJSONString(dst, msg)
	return append(dst, '}', '\n')
}

//tauw:hotpath
func appendStepResponse(dst []byte, r *stepResponse) ([]byte, error) {
	var err error
	dst = append(dst, `{"series_id":`...)
	dst = appendJSONString(dst, r.SeriesID)
	dst = append(dst, `,"fused_outcome":`...)
	dst = strconv.AppendInt(dst, int64(r.FusedOutcome), 10)
	dst = append(dst, `,"uncertainty":`...)
	if dst, err = appendJSONFloat(dst, r.Uncertainty); err != nil {
		return dst, err
	}
	dst = append(dst, `,"stateless_uncertainty":`...)
	if dst, err = appendJSONFloat(dst, r.StatelessU); err != nil {
		return dst, err
	}
	dst = append(dst, `,"series_len":`...)
	dst = strconv.AppendInt(dst, int64(r.SeriesLen), 10)
	dst = append(dst, `,"total_steps":`...)
	dst = strconv.AppendInt(dst, int64(r.TotalSteps), 10)
	dst = append(dst, `,"model_version":`...)
	dst = strconv.AppendUint(dst, r.ModelVersion, 10)
	dst = append(dst, `,"countermeasure":`...)
	dst = appendJSONString(dst, r.Countermeasure)
	dst = append(dst, `,"accepted":`...)
	dst = strconv.AppendBool(dst, r.Accepted)
	return append(dst, '}'), nil
}

// appendBatchItemResponse renders one batch item with the omitempty
// semantics of the struct tags: exactly one of step/error appears.
func appendBatchItemResponse(dst []byte, r *batchItemResponse) ([]byte, error) {
	var err error
	dst = append(dst, `{"status":`...)
	dst = strconv.AppendInt(dst, int64(r.Status), 10)
	if r.Step != nil {
		dst = append(dst, `,"step":`...)
		if dst, err = appendStepResponse(dst, r.Step); err != nil {
			return dst, err
		}
	}
	if r.Error != "" {
		dst = append(dst, `,"error":`...)
		dst = appendJSONString(dst, r.Error)
	}
	return append(dst, '}'), nil
}

// appendBatchStepResponse renders the full batch body. A nil Results slice
// renders as null, as the stdlib encodes nil slices (the handlers never
// produce one — an empty batch is rejected before encoding — but the
// differential fuzz covers the shape).
//
//tauw:hotpath
func appendBatchStepResponse(dst []byte, r *batchStepResponse) ([]byte, error) {
	var err error
	if r.Results == nil {
		dst = append(dst, `{"results":null,"ok":`...)
		dst = strconv.AppendInt(dst, int64(r.OK), 10)
		dst = append(dst, `,"failed":`...)
		dst = strconv.AppendInt(dst, int64(r.Failed), 10)
		return append(dst, '}'), nil
	}
	dst = append(dst, `{"results":[`...)
	for i := range r.Results {
		if i > 0 {
			dst = append(dst, ',')
		}
		if dst, err = appendBatchItemResponse(dst, &r.Results[i]); err != nil {
			return dst, err
		}
	}
	dst = append(dst, `],"ok":`...)
	dst = strconv.AppendInt(dst, int64(r.OK), 10)
	dst = append(dst, `,"failed":`...)
	dst = strconv.AppendInt(dst, int64(r.Failed), 10)
	return append(dst, '}'), nil
}

// ---------------------------------------------------------------- decoder --

// wireStep is one decoded step item: the quality object has already been
// resolved into the wrapper's factor vector (qf), so the map[string]float64
// of the wire format never materialises. When the item carried a semantic
// error (unknown factor, out-of-range value, bad pixel size) it is recorded
// in itemErr and the item fails with its own 400 without failing the batch —
// exactly the split the stdlib path had between json.Decode errors
// (whole-request) and qualityFromMap errors (per-item).
type wireStep struct {
	seriesID string
	outcome  int
	qf       []float64
	itemErr  error
}

// decoder is a minimal JSON scanner over a complete request body. It is
// allocation-free apart from the quality-vector slab: series ids are
// zero-copy views into the body where possible, and unknown-field values are
// skipped without materialising anything.
type decoder struct {
	buf []byte
	pos int

	// scratch backs escaped-string decoding and quality-key lookups.
	scratch []byte
	// slab backs the decoded quality vectors. It is allocated fresh per
	// request — never pooled — because the wrapper buffers retain each
	// item's vector after the request completes. Chunks grow geometrically
	// from one vector up to maxSlabChunkItems, so a single-step request
	// pays one vector-sized allocation while a full batch amortises to a
	// handful of chunks.
	slab      []float64
	nextChunk int
}

// maxSlabChunkItems caps one slab allocation: one allocation per 256 items
// at the largest, while keeping the retained-memory granularity (a chunk
// stays alive while any of its vectors is still buffered) modest.
const maxSlabChunkItems = 256

func (d *decoder) reset(buf []byte) {
	d.buf = buf
	d.pos = 0
	d.slab = nil
	d.nextChunk = 1
}

func (d *decoder) errAt(format string, args ...any) error {
	args = append([]any{d.pos}, args...)
	return fmt.Errorf("invalid JSON at offset %d: "+format, args...)
}

func (d *decoder) skipSpace() {
	for d.pos < len(d.buf) {
		switch d.buf[d.pos] {
		case ' ', '\t', '\n', '\r':
			d.pos++
		default:
			return
		}
	}
}

// literal consumes the given keyword (true/false/null) sans first byte.
func (d *decoder) literal(rest string) error {
	if len(d.buf)-d.pos < len(rest) || string(d.buf[d.pos:d.pos+len(rest)]) != rest {
		return d.errAt("bad literal")
	}
	d.pos += len(rest)
	return nil
}

// number scans one JSON number token (strict grammar: no leading zeros, no
// bare or trailing dot, no leading plus) and returns its raw text.
func (d *decoder) number() ([]byte, error) {
	start := d.pos
	if d.pos < len(d.buf) && d.buf[d.pos] == '-' {
		d.pos++
	}
	switch {
	case d.pos < len(d.buf) && d.buf[d.pos] == '0':
		d.pos++
	case d.pos < len(d.buf) && d.buf[d.pos] >= '1' && d.buf[d.pos] <= '9':
		for d.pos < len(d.buf) && d.buf[d.pos] >= '0' && d.buf[d.pos] <= '9' {
			d.pos++
		}
	default:
		return nil, d.errAt("bad number")
	}
	if d.pos < len(d.buf) && d.buf[d.pos] == '.' {
		d.pos++
		if d.pos >= len(d.buf) || d.buf[d.pos] < '0' || d.buf[d.pos] > '9' {
			return nil, d.errAt("bad number fraction")
		}
		for d.pos < len(d.buf) && d.buf[d.pos] >= '0' && d.buf[d.pos] <= '9' {
			d.pos++
		}
	}
	if d.pos < len(d.buf) && (d.buf[d.pos] == 'e' || d.buf[d.pos] == 'E') {
		d.pos++
		if d.pos < len(d.buf) && (d.buf[d.pos] == '+' || d.buf[d.pos] == '-') {
			d.pos++
		}
		if d.pos >= len(d.buf) || d.buf[d.pos] < '0' || d.buf[d.pos] > '9' {
			return nil, d.errAt("bad number exponent")
		}
		for d.pos < len(d.buf) && d.buf[d.pos] >= '0' && d.buf[d.pos] <= '9' {
			d.pos++
		}
	}
	return d.buf[start:d.pos], nil
}

func (d *decoder) float() (float64, error) {
	tok, err := d.number()
	if err != nil {
		return 0, err
	}
	f, err := strconv.ParseFloat(string(tok), 64)
	if err != nil {
		return 0, d.errAt("number %q out of range", tok)
	}
	return f, nil
}

func (d *decoder) int() (int, error) {
	tok, err := d.number()
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(string(tok), 10, 64)
	if err != nil {
		return 0, d.errAt("number %q is not an integer", tok)
	}
	return int(n), nil
}

// stringBytes scans one JSON string and returns its decoded contents. When
// the raw segment has no escapes and is valid UTF-8 the return aliases the
// body buffer (zero copy — valid until the buffer is recycled); otherwise
// the contents are decoded into the scratch buffer with stdlib semantics
// (escape sequences, surrogate pairs, U+FFFD for invalid input).
func (d *decoder) stringBytes() ([]byte, error) {
	if d.pos >= len(d.buf) || d.buf[d.pos] != '"' {
		return nil, d.errAt("expected string")
	}
	d.pos++
	start := d.pos
	for d.pos < len(d.buf) {
		switch b := d.buf[d.pos]; {
		case b == '"':
			seg := d.buf[start:d.pos]
			d.pos++
			if utf8.Valid(seg) {
				return seg, nil
			}
			return d.replaceInvalid(seg), nil
		case b == '\\':
			return d.stringSlow(start)
		case b < 0x20:
			return nil, d.errAt("control character in string")
		default:
			d.pos++
		}
	}
	return nil, d.errAt("unterminated string")
}

// replaceInvalid copies seg into scratch replacing invalid UTF-8 with
// U+FFFD, as the stdlib string decoder does.
func (d *decoder) replaceInvalid(seg []byte) []byte {
	d.scratch = d.scratch[:0]
	for i := 0; i < len(seg); {
		r, size := utf8.DecodeRune(seg[i:])
		if r == utf8.RuneError && size == 1 {
			d.scratch = utf8.AppendRune(d.scratch, utf8.RuneError)
			i++
			continue
		}
		d.scratch = append(d.scratch, seg[i:i+size]...)
		i += size
	}
	return d.scratch
}

// stringSlow finishes scanning a string that contains escapes, decoding into
// scratch. start is the offset of the first content byte.
func (d *decoder) stringSlow(start int) ([]byte, error) {
	d.scratch = append(d.scratch[:0], d.buf[start:d.pos]...)
	for d.pos < len(d.buf) {
		b := d.buf[d.pos]
		switch {
		case b == '"':
			d.pos++
			if !utf8.Valid(d.scratch) {
				seg := append([]byte(nil), d.scratch...)
				return d.replaceInvalid(seg), nil
			}
			return d.scratch, nil
		case b == '\\':
			d.pos++
			if d.pos >= len(d.buf) {
				return nil, d.errAt("unterminated escape")
			}
			esc := d.buf[d.pos]
			d.pos++
			switch esc {
			case '"', '\\', '/':
				d.scratch = append(d.scratch, esc)
			case 'b':
				d.scratch = append(d.scratch, '\b')
			case 'f':
				d.scratch = append(d.scratch, '\f')
			case 'n':
				d.scratch = append(d.scratch, '\n')
			case 'r':
				d.scratch = append(d.scratch, '\r')
			case 't':
				d.scratch = append(d.scratch, '\t')
			case 'u':
				r, err := d.hex4()
				if err != nil {
					return nil, err
				}
				if utf16.IsSurrogate(r) {
					// A high surrogate must be followed by \u + low
					// surrogate; anything else decodes to U+FFFD, as in
					// the stdlib.
					if d.pos+1 < len(d.buf) && d.buf[d.pos] == '\\' && d.buf[d.pos+1] == 'u' {
						save := d.pos
						d.pos += 2
						r2, err := d.hex4()
						if err != nil {
							return nil, err
						}
						if dec := utf16.DecodeRune(r, r2); dec != utf8.RuneError {
							d.scratch = utf8.AppendRune(d.scratch, dec)
							continue
						}
						d.pos = save
					}
					r = utf8.RuneError
				}
				d.scratch = utf8.AppendRune(d.scratch, r)
			default:
				return nil, d.errAt("bad escape %q", esc)
			}
		case b < 0x20:
			return nil, d.errAt("control character in string")
		default:
			d.scratch = append(d.scratch, b)
			d.pos++
		}
	}
	return nil, d.errAt("unterminated string")
}

func (d *decoder) hex4() (rune, error) {
	if d.pos+4 > len(d.buf) {
		return 0, d.errAt("short unicode escape")
	}
	var r rune
	for i := 0; i < 4; i++ {
		c := d.buf[d.pos+i]
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 | rune(c-'A'+10)
		default:
			return 0, d.errAt("bad unicode escape")
		}
	}
	d.pos += 4
	return r, nil
}

// skipValue consumes one JSON value of any shape — how unknown fields are
// tolerated without materialising them.
func (d *decoder) skipValue() error {
	d.skipSpace()
	if d.pos >= len(d.buf) {
		return d.errAt("unexpected end of input")
	}
	switch b := d.buf[d.pos]; {
	case b == '"':
		_, err := d.stringBytes()
		return err
	case b == '{':
		d.pos++
		return d.skipContainer('}')
	case b == '[':
		d.pos++
		return d.skipContainer(']')
	case b == 't':
		d.pos++
		return d.literal("rue")
	case b == 'f':
		d.pos++
		return d.literal("alse")
	case b == 'n':
		d.pos++
		return d.literal("ull")
	case b == '-' || (b >= '0' && b <= '9'):
		_, err := d.number()
		return err
	default:
		return d.errAt("unexpected character %q", b)
	}
}

func (d *decoder) skipContainer(closer byte) error {
	isObject := closer == '}'
	d.skipSpace()
	if d.pos < len(d.buf) && d.buf[d.pos] == closer {
		d.pos++
		return nil
	}
	for {
		if isObject {
			d.skipSpace()
			if _, err := d.stringBytes(); err != nil {
				return err
			}
			d.skipSpace()
			if d.pos >= len(d.buf) || d.buf[d.pos] != ':' {
				return d.errAt("expected ':'")
			}
			d.pos++
		}
		if err := d.skipValue(); err != nil {
			return err
		}
		d.skipSpace()
		if d.pos >= len(d.buf) {
			return d.errAt("unterminated container")
		}
		switch d.buf[d.pos] {
		case ',':
			d.pos++
		case closer:
			d.pos++
			return nil
		default:
			return d.errAt("expected ',' or %q", closer)
		}
	}
}

// end verifies only whitespace remains — json.Unmarshal semantics for the
// top-level value.
func (d *decoder) end() error {
	d.skipSpace()
	if d.pos != len(d.buf) {
		return d.errAt("trailing data after top-level value")
	}
	return nil
}

// qfVector carves the next quality vector out of the slab.
func (d *decoder) qfVector() []float64 {
	width := len(qualityIndex) + 1
	if len(d.slab) < width {
		n := d.nextChunk
		if n < 1 {
			n = 1
		}
		if n > maxSlabChunkItems {
			n = maxSlabChunkItems
		}
		d.slab = make([]float64, width*n)
		d.nextChunk = n * 8
	}
	qf := d.slab[:width:width]
	d.slab = d.slab[width:]
	for i := range qf {
		qf[i] = 0
	}
	return qf
}

// bytesToString returns a zero-copy string view of b; the view is only valid
// while the backing buffer lives, which the handlers guarantee by holding
// the pooled body buffer until the response is written.
func bytesToString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// maybeNull consumes a null literal if one is next (after whitespace) and
// reports whether it did — json.Unmarshal treats null as a no-op for every
// field type, so every value position must tolerate it.
func (d *decoder) maybeNull() (bool, error) {
	d.skipSpace()
	if d.pos < len(d.buf) && d.buf[d.pos] == 'n' {
		d.pos++
		return true, d.literal("ull")
	}
	return false, nil
}

// decodeStepItem parses one step object into out. Syntax errors fail the
// whole decode; semantic quality errors land in out.itemErr with parsing
// continuing, so one bad item cannot fail a batch. A null in place of the
// object yields the zero item, as the stdlib decoder would.
//
//tauw:hotpath
func (d *decoder) decodeStepItem(out *wireStep) error {
	*out = wireStep{qf: d.qfVector()}
	pixelSize := 0.0
	if isNull, err := d.maybeNull(); isNull || err != nil {
		if err == nil {
			out.itemErr = fmt.Errorf("pixel_size must be positive, got %g", pixelSize)
			out.qf = nil
		}
		return err
	}
	if d.pos >= len(d.buf) || d.buf[d.pos] != '{' {
		return d.errAt("expected step object")
	}
	d.pos++
	d.skipSpace()
	if d.pos < len(d.buf) && d.buf[d.pos] == '}' {
		d.pos++
	} else {
		for {
			d.skipSpace()
			key, err := d.stringBytes()
			if err != nil {
				return err
			}
			// Copy the key decision before scanning the value: the scratch
			// the key may live in is reused by nested strings.
			field := stepField(key)
			d.skipSpace()
			if d.pos >= len(d.buf) || d.buf[d.pos] != ':' {
				return d.errAt("expected ':'")
			}
			d.pos++
			isNull := false
			if field != 0 && field != 3 {
				// Field 3 (quality) handles null itself; for the scalar
				// fields null is a no-op, as in the stdlib.
				if isNull, err = d.maybeNull(); err != nil {
					return err
				}
			}
			switch {
			case isNull:
			case field == 1:
				d.skipSpace()
				s, err := d.stringBytes()
				if err != nil {
					return err
				}
				if sameSlice(s, d.scratch) {
					// Escaped string: scratch is transient, copy out.
					out.seriesID = string(s)
				} else {
					out.seriesID = bytesToString(s)
				}
			case field == 2:
				d.skipSpace()
				out.outcome, err = d.int()
				if err != nil {
					return err
				}
			case field == 3:
				if err := d.decodeQuality(out); err != nil {
					return err
				}
			case field == 4:
				d.skipSpace()
				pixelSize, err = d.float()
				if err != nil {
					return err
				}
			default:
				if err := d.skipValue(); err != nil {
					return err
				}
			}
			d.skipSpace()
			if d.pos >= len(d.buf) {
				return d.errAt("unterminated object")
			}
			switch d.buf[d.pos] {
			case ',':
				d.pos++
			case '}':
				d.pos++
			default:
				return d.errAt("expected ',' or '}'")
			}
			if d.buf[d.pos-1] == '}' {
				break
			}
		}
	}
	// Semantic validation runs on the final values only, so a duplicate
	// key that overwrites a bad value heals the item exactly as it would
	// have through the stdlib map path.
	if out.itemErr == nil {
		for i, v := range out.qf[:len(qualityNames)] {
			if !(v >= 0 && v <= 1) {
				out.itemErr = fmt.Errorf("quality factor %q = %g outside [0,1]", qualityNames[i], v)
				break
			}
		}
	}
	if out.itemErr == nil && !(pixelSize > 0) {
		out.itemErr = fmt.Errorf("pixel_size must be positive, got %g", pixelSize)
	}
	out.qf[len(out.qf)-1] = pixelSize
	if out.itemErr != nil {
		out.qf = nil
	}
	return nil
}

// sameSlice reports whether a aliases b's backing array start — how
// decodeStepItem distinguishes a zero-copy view from scratch contents.
func sameSlice(a, b []byte) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// stepField maps a step-object key to its field number (0 = unknown),
// with json.Unmarshal's matching rules: exact match first, then
// case-insensitive fold.
func stepField(key []byte) int {
	switch string(key) {
	case "series_id":
		return 1
	case "outcome":
		return 2
	case "quality":
		return 3
	case "pixel_size":
		return 4
	}
	switch {
	case foldEq(key, "series_id"):
		return 1
	case foldEq(key, "outcome"):
		return 2
	case foldEq(key, "quality"):
		return 3
	case foldEq(key, "pixel_size"):
		return 4
	}
	return 0
}

// foldEq reports whether key case-insensitively equals the (all-lowercase
// ASCII) field name under encoding/json's folding rules: ASCII case folding
// plus the two Unicode specials the stdlib folds into ASCII, U+017F (ſ -> s)
// and U+212A (K -> k).
func foldEq(key []byte, name string) bool {
	j := 0
	for i := 0; i < len(key); {
		if j >= len(name) {
			return false
		}
		var folded byte
		if c := key[i]; c < utf8.RuneSelf {
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			folded = c
			i++
		} else {
			r, size := utf8.DecodeRune(key[i:])
			switch r {
			case 'ſ':
				folded = 's'
			case 'K':
				folded = 'k'
			default:
				return false
			}
			i += size
		}
		if folded != name[j] {
			return false
		}
		j++
	}
	return j == len(name)
}

// decodeQuality parses the quality object directly into the item's factor
// vector: names resolve through qualityIndex, values land in their slots.
// Unknown names are a semantic item error (recorded, parse continues);
// null is accepted as the empty map, as the stdlib decoder would.
func (d *decoder) decodeQuality(out *wireStep) error {
	d.skipSpace()
	if d.pos < len(d.buf) && d.buf[d.pos] == 'n' {
		d.pos++
		return d.literal("ull")
	}
	if d.pos >= len(d.buf) || d.buf[d.pos] != '{' {
		return d.errAt("expected quality object")
	}
	d.pos++
	d.skipSpace()
	if d.pos < len(d.buf) && d.buf[d.pos] == '}' {
		d.pos++
		return nil
	}
	for {
		d.skipSpace()
		key, err := d.stringBytes()
		if err != nil {
			return err
		}
		slot, known := qualityIndex[string(key)]
		if !known && out.itemErr == nil {
			out.itemErr = fmt.Errorf("unknown quality factor %q", string(key))
		}
		d.skipSpace()
		if d.pos >= len(d.buf) || d.buf[d.pos] != ':' {
			return d.errAt("expected ':'")
		}
		d.pos++
		// A null value stores the zero value under the key, exactly as the
		// stdlib does for map[string]float64.
		v := 0.0
		isNull, err := d.maybeNull()
		if err != nil {
			return err
		}
		if !isNull {
			d.skipSpace()
			if v, err = d.float(); err != nil {
				return err
			}
		}
		if known {
			out.qf[slot] = v
		}
		d.skipSpace()
		if d.pos >= len(d.buf) {
			return d.errAt("unterminated quality object")
		}
		switch d.buf[d.pos] {
		case ',':
			d.pos++
		case '}':
			d.pos++
			return nil
		default:
			return d.errAt("expected ',' or '}'")
		}
	}
}

// decodeStepRequest parses a complete POST /v1/step body (a top-level null
// yields the zero request, as in the stdlib).
func (d *decoder) decodeStepRequest(out *wireStep) error {
	if err := d.decodeStepItem(out); err != nil {
		return err
	}
	return d.end()
}

// errBatchTooLarge aborts a batch decode the moment the steps array
// exceeds maxBatchItems: the cap must bind during the parse, not after it,
// or a legal 16 MiB body of millions of tiny items would be fully
// materialised (and its slice capacity retained by the scratch pool) just
// to be rejected.
var errBatchTooLarge = fmt.Errorf("batch exceeds limit %d", maxBatchItems)

// decodeBatchRequest parses a complete POST /v1/steps body into the reused
// items slice; unknown top-level fields are skipped, "steps": null is the
// empty batch, and an array beyond maxBatchItems fails with
// errBatchTooLarge.
func (d *decoder) decodeBatchRequest(items []wireStep) ([]wireStep, error) {
	items = items[:0]
	// A top-level null decodes to the zero request (no steps), as in the
	// stdlib.
	if isNull, err := d.maybeNull(); isNull || err != nil {
		if err != nil {
			return items, err
		}
		return items, d.end()
	}
	if d.pos >= len(d.buf) || d.buf[d.pos] != '{' {
		return items, d.errAt("expected request object")
	}
	d.pos++
	d.skipSpace()
	if d.pos < len(d.buf) && d.buf[d.pos] == '}' {
		d.pos++
		return items, d.end()
	}
	for {
		d.skipSpace()
		key, err := d.stringBytes()
		if err != nil {
			return items, err
		}
		isSteps := string(key) == "steps" || foldEq(key, "steps")
		d.skipSpace()
		if d.pos >= len(d.buf) || d.buf[d.pos] != ':' {
			return items, d.errAt("expected ':'")
		}
		d.pos++
		if isSteps {
			if items, err = d.decodeStepsArray(items); err != nil {
				return items, err
			}
		} else if err := d.skipValue(); err != nil {
			return items, err
		}
		d.skipSpace()
		if d.pos >= len(d.buf) {
			return items, d.errAt("unterminated object")
		}
		switch d.buf[d.pos] {
		case ',':
			d.pos++
		case '}':
			d.pos++
			return items, d.end()
		default:
			return items, d.errAt("expected ',' or '}'")
		}
	}
}

func (d *decoder) decodeStepsArray(items []wireStep) ([]wireStep, error) {
	d.skipSpace()
	if d.pos < len(d.buf) && d.buf[d.pos] == 'n' {
		d.pos++
		return items[:0], d.literal("ull")
	}
	if d.pos >= len(d.buf) || d.buf[d.pos] != '[' {
		return items, d.errAt("expected steps array")
	}
	d.pos++
	// A duplicate "steps" key replaces the array, as stdlib replaces the
	// slice value.
	items = items[:0]
	d.skipSpace()
	if d.pos < len(d.buf) && d.buf[d.pos] == ']' {
		d.pos++
		return items, nil
	}
	for {
		if len(items) >= maxBatchItems {
			return items, errBatchTooLarge
		}
		var w wireStep
		if err := d.decodeStepItem(&w); err != nil {
			return items, err
		}
		items = append(items, w)
		d.skipSpace()
		if d.pos >= len(d.buf) {
			return items, d.errAt("unterminated array")
		}
		switch d.buf[d.pos] {
		case ',':
			d.pos++
			d.skipSpace()
		case ']':
			d.pos++
			return items, nil
		default:
			return items, d.errAt("expected ',' or ']'")
		}
	}
}

// ------------------------------------------------------------ scratch pool --

// serveScratch bundles every reusable buffer one hot-path request needs:
// the body bytes, the decoder, the decoded items, the pool batch inputs and
// results, and the response buffer. One sync.Pool checkout per request.
type serveScratch struct {
	body    []byte
	dec     decoder
	steps   []wireStep
	items   []core.SeriesStepItem
	back    []int32
	results []core.BatchResult
	resp    batchStepResponse
	// stepBodies backs the per-item Step pointers of resp.Results, sized
	// before the first pointer is taken so growth can never invalidate one.
	stepBodies []stepResponse
	out        []byte
}

var servePool = sync.Pool{New: func() any {
	return &serveScratch{body: make([]byte, 0, 4096), out: make([]byte, 0, 4096)}
}}

func getScratch() *serveScratch { return servePool.Get().(*serveScratch) }

func (s *serveScratch) release() {
	// Drop references the pool must not pin: series-id views into the body
	// buffer die with the length reset; quality vectors are owned by the
	// wrapper buffers now and must not be reachable from the pool.
	for i := range s.steps {
		s.steps[i] = wireStep{}
	}
	s.steps = s.steps[:0]
	for i := range s.items {
		s.items[i] = core.SeriesStepItem{}
	}
	s.items = s.items[:0]
	s.back = s.back[:0]
	for i := range s.results {
		s.results[i] = core.BatchResult{}
	}
	s.results = s.results[:0]
	for i := range s.resp.Results {
		s.resp.Results[i] = batchItemResponse{}
	}
	s.resp.Results = s.resp.Results[:0]
	for i := range s.stepBodies {
		s.stepBodies[i] = stepResponse{}
	}
	s.stepBodies = s.stepBodies[:0]
	s.body = s.body[:0]
	s.out = s.out[:0]
	s.dec.reset(nil)
	servePool.Put(s)
}

// readBody reads r in full into dst's storage (grown as needed), the pooled
// replacement for io.ReadAll on the hot endpoints.
func readBody(dst []byte, r io.Reader) ([]byte, error) {
	dst = dst[:0]
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}
