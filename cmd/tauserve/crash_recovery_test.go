// crash_recovery_test.go is the process-level durability proof behind the
// CI crash-recovery job: a real tauserve binary is driven over HTTP,
// SIGKILLed mid-flight, and restarted from its state directory — the
// restored process must continue every pre-crash series from the WAL, and
// a later graceful restart must restore the monitor from the drain-time
// checkpoint.
package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildServeBinary compiles the tauserve command once per test run.
func buildServeBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tauserve")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building tauserve: %v\n%s", err, out)
	}
	return bin
}

// freeAddr grabs an ephemeral port and releases it for the child process.
// The gap is racy in principle; in CI the port is ours in practice.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// syncBuffer is a mutex-guarded log sink: exec's pipe copier writes into it
// from its own goroutine, and the chaos test reads it while the child is
// still running, so the plain bytes.Buffer would be a data race under -race.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

type serveProc struct {
	cmd *exec.Cmd
	log *syncBuffer
}

func startServe(t *testing.T, bin, addr, stateDir string, extra ...string) *serveProc {
	t.Helper()
	args := []string{
		"-addr", addr,
		"-preset", "tiny",
		"-state-dir", stateDir,
		"-flush-interval", "25ms",
		"-checkpoint-interval", "1h", // only the startup and drain checkpoints
		"-buffer-limit", "16",
		"-drain-timeout", "10s",
	}
	cmd := exec.Command(bin, append(args, extra...)...)
	log := &syncBuffer{}
	cmd.Stdout = log
	cmd.Stderr = log
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serveProc{cmd: cmd, log: log}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			p.cmd.Process.Kill() //nolint:errcheck // best-effort teardown
			p.cmd.Wait()         //nolint:errcheck
		}
	})
	return p
}

func (p *serveProc) waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(90 * time.Second) // includes calibration
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if p.cmd.ProcessState != nil {
			t.Fatalf("server exited before becoming ready:\n%s", p.log.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("server never became ready:\n%s", p.log.String())
}

// metricValue scrapes one sample (exact name match, no labels) out of
// /metrics.
func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("parsing %s sample %q: %v", name, fields[1], err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition:\n%s", name, buf.String())
	return 0
}

func waitMetricAtLeast(t *testing.T, base, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if metricValue(t, base, name) >= want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("metric %s never reached %g (last %g)", name, want, metricValue(t, base, name))
}

func postJSONBody(t *testing.T, url string, body any, out any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body) //nolint:errcheck
		t.Fatalf("POST %s = %d: %s", url, resp.StatusCode, buf.String())
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func crStepOnce(t *testing.T, base, id string) stepResponse {
	t.Helper()
	var resp stepResponse
	postJSONBody(t, base+"/v1/step", stepRequest{
		SeriesID:  id,
		Outcome:   14,
		Quality:   map[string]float64{"rain": 0.2},
		PixelSize: 170,
	}, &resp)
	return resp
}

func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level test")
	}
	bin := buildServeBinary(t)
	stateDir := t.TempDir()
	addr := freeAddr(t)
	base := "http://" + addr

	// ---- Phase 1: serve traffic, then die hard. --------------------------
	p1 := startServe(t, bin, addr, stateDir)
	p1.waitReady(t, base)
	dumpFlightOnFailure(t, base)
	var ns newSeriesResponse
	postJSONBody(t, base+"/v1/series", struct{}{}, &ns)
	if ns.SeriesID == "" {
		t.Fatal("no series id")
	}
	const preCrashSteps = 12
	var last stepResponse
	for i := 0; i < preCrashSteps; i++ {
		last = crStepOnce(t, base, ns.SeriesID)
	}
	if last.TotalSteps != preCrashSteps {
		t.Fatalf("pre-crash TotalSteps %d, want %d", last.TotalSteps, preCrashSteps)
	}
	// Judge three estimates so the provenance ring has taken slots to
	// restore.
	for _, step := range []int{3, 5, 8} {
		postJSONBody(t, base+"/v1/feedback",
			map[string]any{"series_id": ns.SeriesID, "step": step, "truth": 14}, nil)
	}
	// Two full flush cycles after the last write guarantee it is in the
	// synced WAL, then SIGKILL — no drain, no final checkpoint.
	flushed := metricValue(t, base, "tauw_checkpoint_flushes_total")
	waitMetricAtLeast(t, base, "tauw_checkpoint_flushes_total", flushed+2)
	if err := p1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p1.cmd.Wait() //nolint:errcheck // killed on purpose

	// ---- Phase 2: restart from the WAL. ----------------------------------
	p2 := startServe(t, bin, addr, stateDir)
	p2.waitReady(t, base)
	if got := metricValue(t, base, "tauw_active_series"); got != 1 {
		t.Fatalf("restored active series %g, want 1\n%s", got, p2.log.String())
	}
	// The startup path writes a post-recovery checkpoint.
	if got := metricValue(t, base, "tauw_checkpoint_total"); got < 1 {
		t.Fatalf("post-recovery checkpoint count %g", got)
	}
	// The pre-crash series continues where it stopped: the WAL held its
	// full ring state, so the next step is preCrashSteps+1.
	res := crStepOnce(t, base, ns.SeriesID)
	if res.TotalSteps != preCrashSteps+1 {
		t.Fatalf("post-restart TotalSteps %d, want %d\n%s",
			res.TotalSteps, preCrashSteps+1, p2.log.String())
	}
	// An already-judged step must stay consumed across the crash (409 on
	// the duplicate), and an unjudged pre-crash step must still join.
	dupBody, _ := json.Marshal(map[string]any{"series_id": ns.SeriesID, "step": 5, "truth": 14})
	dupResp, err := http.Post(base+"/v1/feedback", "application/json", bytes.NewReader(dupBody))
	if err != nil {
		t.Fatal(err)
	}
	dupResp.Body.Close()
	if dupResp.StatusCode != http.StatusConflict {
		t.Fatalf("re-judging consumed step = %d, want %d", dupResp.StatusCode, http.StatusConflict)
	}
	postJSONBody(t, base+"/v1/feedback",
		map[string]any{"series_id": ns.SeriesID, "step": 7, "truth": 14}, nil)
	postJSONBody(t, base+"/v1/feedback",
		map[string]any{"series_id": ns.SeriesID, "step": 9, "truth": 0}, nil)

	// Graceful shutdown: the drain ends with a final full checkpoint.
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p2.cmd.Wait(); err != nil {
		t.Fatalf("graceful shutdown exit: %v\n%s", err, p2.log.String())
	}
	if !strings.Contains(p2.log.String(), "final checkpoint written") {
		t.Fatalf("drain log missing final checkpoint:\n%s", p2.log.String())
	}

	// ---- Phase 3: restart from the drain checkpoint. ---------------------
	p3 := startServe(t, bin, addr, stateDir)
	p3.waitReady(t, base)
	// The checkpoint carries the monitor: the two phase-2 feedbacks and the
	// 13 monitored steps survive, unlike after the SIGKILL (monitor state
	// is checkpoint-granular by design).
	if got := metricValue(t, base, "tauw_feedback_total"); got != 2 {
		t.Fatalf("restored feedback count %g, want 2\n%s", got, p3.log.String())
	}
	// The pool's aggregate step counter is checkpoint-granular too: the 12
	// pre-crash steps died with the SIGKILL (no checkpoint held them), so
	// the drain checkpoint carries exactly phase 2's single step. Series
	// state is flush-granular and kept all 13 — asserted via TotalSteps
	// below.
	if got := metricValue(t, base, "tauw_steps_total"); got != 1 {
		t.Fatalf("restored step count %g, want 1 (the post-crash step)", got)
	}
	if got := metricValue(t, base, "tauw_active_series"); got != 1 {
		t.Fatalf("active series after second restart %g, want 1", got)
	}
	res = crStepOnce(t, base, ns.SeriesID)
	if res.TotalSteps != preCrashSteps+2 {
		t.Fatalf("TotalSteps after second restart %d, want %d", res.TotalSteps, preCrashSteps+2)
	}
	if err := p3.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p3.cmd.Wait(); err != nil {
		t.Fatalf("final shutdown exit: %v\n%s", err, p3.log.String())
	}
}

// TestStateDirFlagValidation keeps the no-durability path intact: without
// -state-dir the server runs exactly as before (no store, no checkpointer),
// which the rest of the test suite exercises; here we just make sure a
// bogus state dir fails fast instead of serving without durability.
func TestStateDirFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level test")
	}
	bin := buildServeBinary(t)
	blocker := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-state-dir", filepath.Join(blocker, "nested"), "-preset", "tiny")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("server started over an unusable state dir:\n%s", out)
	}
	if !strings.Contains(string(out), "state dir") && !strings.Contains(string(out), "state-dir") {
		t.Fatalf("unhelpful failure output: %v\n%s", err, out)
	}
}
