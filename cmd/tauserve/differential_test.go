package main

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/iese-repro/tauw/internal/augment"
	"github.com/iese-repro/tauw/internal/eval"
	"github.com/iese-repro/tauw/internal/simplex"
)

// TestOnlineOfflineMonitorDifferential is the subsystem's ground-truth
// check: the same trace (every test series of the study, each step's truth
// reported immediately) is driven once through the live HTTP path — series
// open, /v1/step, /v1/feedback, series close — and once through the offline
// replay (eval.RunMonitorReplay). Both are configured identically, so the
// series→track→shard assignment, the join order, and every accumulator
// update sequence coincide, and the resulting windowed Brier, cumulative
// Brier, ECE, and reliability bins must be BIT-IDENTICAL, not just close:
// offline evaluation and online monitoring are one implementation, and any
// divergence is a bug in the wiring, not an approximation.
func TestOnlineOfflineMonitorDifferential(t *testing.T) {
	testServer(t) // build the shared study fixture
	st := studyVal

	// Offline: the replay harness.
	offline, err := st.RunMonitorReplay(eval.MonitorReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// Online: a fresh server at the replay's exact configuration (default
	// shards, default monitor, DefaultFeedbackRing == DefaultReplayRing).
	if DefaultFeedbackRing != eval.DefaultReplayRing {
		t.Fatalf("server ring %d != replay ring %d: differential preconditions broken",
			DefaultFeedbackRing, eval.DefaultReplayRing)
	}
	srv, err := NewServer(st.Base, st.TAQIM, simplex.DefaultTSRPolicy())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	names := augment.Names()
	steps := 0
	for si, s := range st.TestSeries {
		id := newSeries(t, ts)
		for j := range s.Outcomes {
			q := s.Quality[j]
			qm := make(map[string]float64, len(names))
			for k, name := range names {
				qm[name] = q[k]
			}
			resp := postJSON(t, ts.URL+"/v1/step", stepRequest{
				SeriesID: id, Outcome: s.Outcomes[j], Quality: qm, PixelSize: q[len(q)-1],
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("series %d step %d = %d", si, j, resp.StatusCode)
			}
			got := decode[stepResponse](t, resp)
			fresp := postJSON(t, ts.URL+"/v1/feedback", feedbackWire{
				SeriesID: id, Step: got.TotalSteps, Truth: s.Truth,
			})
			if fresp.StatusCode != http.StatusOK {
				t.Fatalf("series %d step %d feedback = %d", si, j, fresp.StatusCode)
			}
			fresp.Body.Close()
			steps++
		}
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/series/"+id, nil)
		dresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		dresp.Body.Close()
	}
	if steps != offline.Steps {
		t.Fatalf("online drove %d steps, offline %d", steps, offline.Steps)
	}

	on := srv.Calibration().Snapshot()
	off := offline.Snapshot
	if on.Feedbacks != off.Feedbacks || on.Correct != off.Correct {
		t.Errorf("feedback counts: online %d/%d, offline %d/%d",
			on.Feedbacks, on.Correct, off.Feedbacks, off.Correct)
	}
	// Bit-exact float comparisons are the point of this test.
	if on.Brier != off.Brier {
		t.Errorf("cumulative Brier: online %.17g, offline %.17g", on.Brier, off.Brier)
	}
	if on.WindowedBrier != off.WindowedBrier {
		t.Errorf("windowed Brier: online %.17g, offline %.17g", on.WindowedBrier, off.WindowedBrier)
	}
	if on.WindowCount != off.WindowCount {
		t.Errorf("window count: online %d, offline %d", on.WindowCount, off.WindowCount)
	}
	if on.ECE != off.ECE {
		t.Errorf("ECE: online %.17g, offline %.17g", on.ECE, off.ECE)
	}
	if len(on.Bins) != len(off.Bins) {
		t.Fatalf("bin counts differ: %d vs %d", len(on.Bins), len(off.Bins))
	}
	for b := range on.Bins {
		if on.Bins[b] != off.Bins[b] {
			t.Errorf("bin %d: online %+v, offline %+v", b, on.Bins[b], off.Bins[b])
		}
	}
}
