// body_test.go pins the request-body hygiene of the handlers: endpoints
// that never read their body must still drain it so pipelined keep-alive
// connections survive (net/http cuts the connection when more than its
// post-handler limit of unread body remains), and endpoints that do read
// must answer an oversized body with 413 and the structured JSON error
// shape, not a generic 400.
package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestKeepAliveSurvivesUnreadLargeBodies is the drain-and-limit regression
// test: two POSTs with ~512 KiB bodies ride one pipelined connection to an
// endpoint that ignores its body. Without the handler draining the body,
// net/http abandons keep-alive (it only auto-drains 256 KiB) and the second
// pipelined request dies with a reset instead of a response.
func TestKeepAliveSurvivesUnreadLargeBodies(t *testing.T) {
	ts := testServer(t)
	addr := strings.TrimPrefix(ts.URL, "http://")
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))

	body := bytes.Repeat([]byte{' '}, 512<<10)
	var req bytes.Buffer
	for i := 0; i < 2; i++ {
		fmt.Fprintf(&req, "POST /v1/series HTTP/1.1\r\nHost: tauserve\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n", len(body))
		req.Write(body)
	}
	if _, err := conn.Write(req.Bytes()); err != nil {
		t.Fatal(err)
	}

	br := bufio.NewReader(conn)
	for i := 0; i < 2; i++ {
		resp, err := http.ReadResponse(br, &http.Request{Method: http.MethodPost})
		if err != nil {
			t.Fatalf("response %d: %v (keep-alive broken by unread body?)", i, err)
		}
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("response %d = %d", i, resp.StatusCode)
		}
		if resp.Close {
			t.Fatalf("response %d asked to close the connection", i)
		}
		created := decode[newSeriesResponse](t, resp)
		if created.SeriesID == "" {
			t.Fatalf("response %d: empty series id", i)
		}
	}
}

// TestRecalibrateDrainsBody covers the same hygiene on the other body-less
// POST endpoint: /v1/recalibrate with a large body keeps the connection.
func TestRecalibrateDrainsBody(t *testing.T) {
	ts := testServer(t)
	addr := strings.TrimPrefix(ts.URL, "http://")
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))

	body := bytes.Repeat([]byte{' '}, 512<<10)
	var req bytes.Buffer
	for i := 0; i < 2; i++ {
		fmt.Fprintf(&req, "POST /v1/recalibrate HTTP/1.1\r\nHost: tauserve\r\nContent-Length: %d\r\n\r\n", len(body))
		req.Write(body)
	}
	if _, err := conn.Write(req.Bytes()); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	for i := 0; i < 2; i++ {
		resp, err := http.ReadResponse(br, &http.Request{Method: http.MethodPost})
		if err != nil {
			t.Fatalf("response %d: %v (keep-alive broken by unread body?)", i, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("response %d = %d", i, resp.StatusCode)
		}
		if resp.Close {
			t.Fatalf("response %d asked to close the connection", i)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// TestOversizedBodies413 pins the MaxBytesError mapping: a body above the
// endpoint's limit answers 413 with the structured JSON error shape on
// every body-reading v1 endpoint.
func TestOversizedBodies413(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		path  string
		bytes int
	}{
		{"/v1/step", maxStepBodyBytes + 2},
		{"/v1/feedback", maxStepBodyBytes + 2},
		{"/v1/steps", maxBatchBodyBytes + 2},
	}
	for _, tc := range cases {
		t.Run(tc.path, func(t *testing.T) {
			// Spaces are valid JSON leading whitespace, so a rejection can
			// only come from the size limit, never the parser.
			body := bytes.Repeat([]byte{' '}, tc.bytes)
			resp, err := http.Post(ts.URL+tc.path, "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusRequestEntityTooLarge {
				t.Fatalf("status %d, want 413", resp.StatusCode)
			}
			got := decode[errorResponse](t, resp)
			if got.Error == "" {
				t.Fatal("413 without a structured error body")
			}
		})
	}
}
