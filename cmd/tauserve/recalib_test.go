package main

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"

	"github.com/iese-repro/tauw/internal/monitor"
	"github.com/iese-repro/tauw/internal/recalib"
)

// judge posts one ground-truth report and returns the decoded response.
func judge(t *testing.T, url, id string, step, truth int) feedbackResponse {
	t.Helper()
	resp := postJSON(t, url+"/v1/feedback", feedbackWire{SeriesID: id, Step: step, Truth: truth})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feedback step %d = %d", step, resp.StatusCode)
	}
	return decode[feedbackResponse](t, resp)
}

// scrape fetches /metrics as text.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestRecalibrateEndpoint(t *testing.T) {
	_, ts := monitoredServer(t,
		WithRecalibration(recalib.Config{MinLeafFeedback: 5, Cooldown: -1}))
	id := newSeries(t, ts)

	// Nothing accumulated yet: the trigger reports the guard instead of
	// bumping the version.
	resp := postJSON(t, ts.URL+"/v1/recalibrate", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recalibrate = %d", resp.StatusCode)
	}
	rr := decode[recalibResponse](t, resp)
	if rr.Swapped || rr.Reason == "" || rr.OldVersion != 1 || rr.NewVersion != 1 {
		t.Fatalf("empty recalibration = %+v", rr)
	}

	// Serve and judge 20 steps as wrong: the stepped region accumulates
	// heavy failure evidence.
	var first stepResponse
	for i := 1; i <= 20; i++ {
		sr := stepOnce(t, ts, id, 14)
		if i == 1 {
			first = sr
			if sr.ModelVersion != 1 {
				t.Fatalf("pre-swap step model_version = %d, want 1", sr.ModelVersion)
			}
		}
		judge(t, ts.URL, id, sr.TotalSteps, sr.FusedOutcome+1)
	}

	resp = postJSON(t, ts.URL+"/v1/recalibrate", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recalibrate = %d", resp.StatusCode)
	}
	rr = decode[recalibResponse](t, resp)
	if !rr.Swapped || rr.OldVersion != 1 || rr.NewVersion != 2 {
		t.Fatalf("recalibration with evidence = %+v", rr)
	}
	if len(rr.Leaves) == 0 {
		t.Fatal("no per-leaf deltas in the response")
	}
	lifted := 0
	for _, d := range rr.Leaves {
		if d.Refreshed {
			lifted++
			if d.NewBound <= d.OldBound {
				t.Errorf("all-wrong evidence must lift leaf %d: %g -> %g", d.Leaf, d.OldBound, d.NewBound)
			}
			if d.OnlineCount < 5 {
				t.Errorf("refreshed leaf %d below the evidence guard: %+v", d.Leaf, d)
			}
		}
	}
	if lifted == 0 {
		t.Fatal("no leaf was refreshed")
	}

	// The swap is live: the next step serves the new revision and a higher
	// bound for the same input.
	sr := stepOnce(t, ts, id, 14)
	if sr.ModelVersion != 2 {
		t.Errorf("post-swap step model_version = %d, want 2", sr.ModelVersion)
	}
	if sr.Uncertainty <= first.Uncertainty {
		t.Errorf("post-swap uncertainty %g not above pre-swap %g", sr.Uncertainty, first.Uncertainty)
	}

	// The swap is observable on /metrics.
	metrics := scrape(t, ts.URL)
	for _, want := range []string{
		"tauw_model_version 2\n",
		"tauw_recalibrations_total 1\n",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Contains(metrics, "tauw_model_last_swap_timestamp_seconds 0\n") {
		t.Error("last-swap timestamp still zero after a swap")
	}
}

func TestAutoRecalibOnDriftAlarm(t *testing.T) {
	_, ts := monitoredServer(t,
		WithAutoRecalib(true),
		WithRecalibration(recalib.Config{MinLeafFeedback: 3, Cooldown: -1}),
		WithMonitorConfig(monitor.Config{
			Drift: monitor.DriftConfig{Lambda: 2, MinSamples: 10},
		}))
	id := newSeries(t, ts)

	// A calibrated baseline: correct verdicts keep the squared error low.
	for i := 0; i < 15; i++ {
		sr := stepOnce(t, ts, id, 14)
		judge(t, ts.URL, id, sr.TotalSteps, sr.FusedOutcome)
	}
	if m := scrape(t, ts.URL); !strings.Contains(m, "tauw_model_version 1\n") {
		t.Fatal("model swapped during the calibrated baseline")
	}

	// Sustained degradation: wrong verdicts push the Page-Hinkley statistic
	// over lambda, the alarm fires, and the armed auto trigger swaps.
	swapped := false
	for i := 0; i < 60 && !swapped; i++ {
		sr := stepOnce(t, ts, id, 14)
		judge(t, ts.URL, id, sr.TotalSteps, sr.FusedOutcome+1)
		swapped = sr.ModelVersion >= 2
	}
	if !swapped {
		t.Fatal("auto recalibration never swapped under sustained degradation")
	}
	metrics := scrape(t, ts.URL)
	if !strings.Contains(metrics, "tauw_recalibrations_total") ||
		strings.Contains(metrics, "tauw_recalibrations_total 0\n") {
		t.Errorf("auto swap not visible in metrics")
	}
	// The swap re-armed the detector: the alarm is no longer active.
	if strings.Contains(metrics, "tauw_drift_active 1\n") {
		t.Error("drift alarm still active after the auto swap")
	}
}

// TestRecalibResponseMatchesStdlib pins the reflection-free recalibration
// encoder byte-for-byte against encoding/json.
func TestRecalibResponseMatchesStdlib(t *testing.T) {
	cases := []recalibResponse{
		{Swapped: false, Reason: recalib.ReasonNoEvidence, OldVersion: 1, NewVersion: 1},
		{Swapped: false, Reason: `guard <&> "quoted"`, OldVersion: 7, NewVersion: 7, Leaves: []recalibLeafDelta{}},
		{
			Swapped: true, OldVersion: 2, NewVersion: 3,
			Leaves: []recalibLeafDelta{
				{Leaf: 0, OldBound: 0.0072, NewBound: 0.31, OnlineCount: 120, OnlineEvents: 40, PriorCount: 220, PriorEvents: 2, Refreshed: true},
				{Leaf: 1, OldBound: 1e-7, NewBound: 1e-7, PriorCount: 380, PriorEvents: 9},
			},
		},
	}
	for i, rc := range cases {
		want, err := json.Marshal(rc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := appendRecalibResponse(nil, &rc)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("case %d:\n got %s\nwant %s", i, got, want)
		}
	}
	// Non-finite bounds fail like the stdlib.
	bad := recalibResponse{Leaves: []recalibLeafDelta{{OldBound: math.NaN()}}}
	if _, err := appendRecalibResponse(nil, &bad); !errors.Is(err, errNonFiniteJSON) {
		t.Errorf("NaN bound: err = %v, want errNonFiniteJSON", err)
	}
	if _, err := json.Marshal(bad); err == nil {
		t.Error("stdlib unexpectedly encodes NaN")
	}
}

// TestDriftDeltaFlagSentinel pins the flag layer of the explicit-zero
// satellite: negative means "package default", zero and positive values are
// honoured verbatim.
func TestDriftDeltaFlagSentinel(t *testing.T) {
	cases := []struct {
		flag      float64
		wantDelta float64
		wantSet   bool
	}{
		{-1, 0, false},     // sentinel: package default
		{0, 0, true},       // explicit strict detector
		{0.25, 0.25, true}, // explicit tolerance
	}
	for _, tc := range cases {
		got := driftConfigFromFlags(tc.flag, 25, 200)
		if got.Delta != tc.wantDelta || got.DeltaSet != tc.wantSet {
			t.Errorf("driftConfigFromFlags(%g): Delta=%g DeltaSet=%v, want Delta=%g DeltaSet=%v",
				tc.flag, got.Delta, got.DeltaSet, tc.wantDelta, tc.wantSet)
		}
		if got.Lambda != 25 || got.MinSamples != 200 {
			t.Errorf("driftConfigFromFlags(%g) dropped lambda/min-samples: %+v", tc.flag, got)
		}
	}
}
