// Command tauserve runs the timeseries-aware uncertainty wrapper as a
// runtime-monitoring HTTP service. On startup it builds and calibrates the
// study pipeline (synthetic data, DDM, wrappers) at the chosen preset, then
// serves fused outcomes with dependable uncertainties and simplex
// countermeasures.
//
// Session state lives in a sharded wrapper pool: opens, steps, and closes
// on different series never contend on a global lock, and the batch endpoint
// fans a slice of steps out across the shards with a bounded worker group.
//
// Usage:
//
//	tauserve [-addr :8080] [-preset tiny|quick|paper]
//	         [-shards 0] [-max-series 0] [-batch-workers 0] [-buffer-limit 0]
//
// Endpoints:
//
//	POST   /v1/series          start tracking a new physical object
//	POST   /v1/step            {series_id, outcome, quality{...}, pixel_size}
//	POST   /v1/steps           {steps: [per-series steps]} — batched, per-item statuses
//	DELETE /v1/series/{id}     stop tracking
//	GET    /v1/stats           monitor counters, active series, shard count
//	GET    /v1/model/rules     calibrated taQIM rules (transparency)
//	GET    /healthz            liveness
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"github.com/iese-repro/tauw/internal/eval"
	"github.com/iese-repro/tauw/internal/simplex"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tauserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tauserve", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		preset       = fs.String("preset", "tiny", "calibration preset: tiny, quick, or paper")
		shards       = fs.Int("shards", 0, "wrapper-pool shard count (0 = default, rounded up to a power of two)")
		maxSeries    = fs.Int("max-series", 0, "cap on concurrently open series (0 = unlimited)")
		batchWorkers = fs.Int("batch-workers", 0, "max goroutines per /v1/steps request (0 = GOMAXPROCS)")
		bufferLimit  = fs.Int("buffer-limit", 0, "per-series timeseries buffer cap (0 = unbounded)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var cfg eval.StudyConfig
	switch *preset {
	case "tiny":
		cfg = eval.TinyConfig()
	case "quick":
		cfg = eval.QuickConfig()
	case "paper":
		cfg = eval.PaperConfig()
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}
	log.Printf("calibrating wrappers (preset %q)...", cfg.Name)
	start := time.Now()
	st, err := eval.BuildStudy(cfg)
	if err != nil {
		return err
	}
	log.Printf("calibrated in %v (DDM test accuracy %.2f%%)", time.Since(start).Round(time.Millisecond), 100*st.DDMTestAccuracy)
	srv, err := NewServer(st.Base, st.TAQIM, simplex.DefaultTSRPolicy(),
		WithPoolShards(*shards), WithMaxSeries(*maxSeries),
		WithBatchWorkers(*batchWorkers), WithBufferLimit(*bufferLimit))
	if err != nil {
		return err
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("listening on %s", *addr)
	return httpServer.ListenAndServe()
}
