// Command tauserve runs the timeseries-aware uncertainty wrapper as a
// runtime-monitoring HTTP service. On startup it builds and calibrates the
// study pipeline (synthetic data, DDM, wrappers) at the chosen preset, then
// serves fused outcomes with dependable uncertainties and simplex
// countermeasures.
//
// Session state lives in a sharded wrapper pool: opens, steps, and closes
// on different series never contend on a global lock, and the batch endpoint
// fans a slice of steps out across the shards with a bounded worker group.
// A runtime calibration monitor watches the estimates on live traffic:
// ground truth reported to POST /v1/feedback is joined to the exact
// estimates it judges, streamed into windowed Brier / reliability-bin / ECE
// statistics, and guarded by a Page-Hinkley drift alarm; GET /metrics
// exposes everything in Prometheus text format.
//
// On SIGINT/SIGTERM the server drains gracefully: /readyz flips to 503 so
// load balancers stop routing, in-flight requests finish (bounded by
// -drain-timeout), then the process exits.
//
// With -state-dir the serving state is durable: series rings, feedback
// provenance, monitor accumulators, and the serving model revision are
// checkpointed to disk write-behind (a background flusher harvests
// dirty series every -flush-interval; a full checkpoint runs every
// -checkpoint-interval or when the WAL outgrows -wal-max-bytes), and on
// startup the server restores them before accepting traffic. A crash loses
// at most one flush interval of series history; a graceful drain ends with
// a final checkpoint that loses nothing.
//
// Durability failures never reach the hot path: each store operation is
// retried with jittered exponential backoff (-store-retry-attempts,
// -store-retry-base), and -breaker-threshold consecutive failed cycles trip
// a circuit breaker into degraded mode — traffic keeps serving from RAM,
// /readyz reports "degraded" (still 200, so the instance stays in load
// balancer rotation), and tauw_degraded / tauw_store_errors_total expose
// the state. While degraded, the store is probed every -breaker-probe; a
// successful probe writes a full recovery checkpoint (closing the WAL gap
// the outage opened) and restores durability. -fault-inject arms a
// runtime-programmable fault injector (POST /debug/fault) for chaos
// testing; never set it in production.
//
// Overload is shed, not queued unboundedly: -max-inflight caps concurrently
// processed requests per hot endpoint (step/steps/feedback),
// -admission-queue bounds how many may wait for a slot (excess answers 429
// with Retry-After), and -request-timeout is a per-request deadline — spent
// waiting in the admission queue (503 on expiry) and propagated as a
// context through batch processing. Sheds are counted per endpoint and
// reason in tauw_shed_total. -read-timeout / -write-timeout bound the
// connection I/O itself.
//
// The drift loop is closed: ground-truth feedback is also attributed to the
// taQIM region (leaf) that produced each judged estimate, and the
// accumulated per-leaf evidence can be folded back into the model — POST
// /v1/recalibrate refreshes every sufficiently-evidenced leaf's binomial
// bound and hot-swaps the refreshed model into the serving pool with zero
// downtime (in-flight steps finish on the old revision; a monotonically
// increasing model version is stamped into every step response). With
// -auto-recalib the swap also happens automatically when the drift alarm
// fires, guarded by a cooldown and a min-feedback-per-leaf requirement.
//
// Usage:
//
//	tauserve [-addr :8080] [-preset tiny|quick|paper]
//	         [-shards 0] [-max-series 0] [-batch-workers 0] [-buffer-limit 0]
//	         [-feedback-ring 256] [-brier-window 1024] [-calib-bins 10]
//	         [-drift-delta -1] [-drift-lambda 25] [-drift-min-samples 200]
//	         [-auto-recalib] [-recalib-min-leaf 50] [-recalib-cooldown 1m]
//	         [-recalib-laplace 0] [-recalib-drop-prior]
//	         [-state-dir ""] [-flush-interval 1s] [-checkpoint-interval 1m]
//	         [-wal-max-bytes 16777216]
//	         [-store-retry-attempts 3] [-store-retry-base 10ms]
//	         [-breaker-threshold 3] [-breaker-probe 5s] [-fault-inject]
//	         [-max-inflight 0] [-admission-queue 0] [-request-timeout 0]
//	         [-read-timeout 1m] [-write-timeout 1m]
//	         [-drain-timeout 10s]
//
// Endpoints:
//
//	POST   /v1/series          start tracking a new physical object
//	POST   /v1/step            {series_id, outcome, quality{...}, pixel_size}
//	POST   /v1/steps           {steps: [per-series steps]} — batched, per-item statuses
//	POST   /v1/feedback        {series_id, step, truth} — ground-truth join
//	POST   /v1/recalibrate     refresh leaf bounds from feedback, hot-swap the model
//	DELETE /v1/series/{id}     stop tracking
//	GET    /v1/stats           monitor counters, active series, shard count
//	GET    /v1/model/rules     calibrated taQIM rules (transparency)
//	GET    /metrics            Prometheus text exposition (reliability, drift, model version, latency)
//	GET    /healthz            liveness
//	GET    /readyz             readiness (503 while draining; 200 "degraded" while durability is suspended)
//	POST   /debug/fault        reprogram the injected store fault plan (-fault-inject only)
//
// The step/steps/feedback codecs in this package are hand-rolled
// (codec.go); //tauw:codec machine-enforces that they stay that way. The
// two encoding/json imports that remain (debug fault config, cold admin
// responses) carry explicit tauwcheck:ignore exemptions.
//
//tauw:codec
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	// The pprof handlers register on http.DefaultServeMux, which only the
	// -debug-addr listener serves (the API listener uses its own mux), so
	// profiling never leaks onto the public port.
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/iese-repro/tauw/internal/eval"
	"github.com/iese-repro/tauw/internal/monitor"
	"github.com/iese-repro/tauw/internal/recalib"
	"github.com/iese-repro/tauw/internal/simplex"
	"github.com/iese-repro/tauw/internal/store"
	"github.com/iese-repro/tauw/internal/trace"
	"github.com/iese-repro/tauw/internal/xlog"
)

// mainLog is the process-lifecycle logger (startup, shutdown, listeners).
var mainLog = xlog.New("server")

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tauserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tauserve", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", ":8080", "listen address")
		tcpAddr = fs.String("tcp-addr", "",
			"binary streaming transport listen address (empty disables it); "+
				"persistent-connection frame protocol for clients that outgrow "+
				"the JSON endpoints' per-request HTTP overhead")
		preset       = fs.String("preset", "tiny", "calibration preset: tiny, quick, or paper")
		shards       = fs.Int("shards", 0, "wrapper-pool shard count (0 = default, rounded up to a power of two)")
		maxSeries    = fs.Int("max-series", 0, "cap on concurrently open series (0 = unlimited)")
		batchWorkers = fs.Int("batch-workers", 0, "max goroutines per /v1/steps request (0 = GOMAXPROCS)")
		bufferLimit  = fs.Int("buffer-limit", 0, "per-series timeseries buffer cap (0 = unbounded)")
		feedbackRing = fs.Int("feedback-ring", DefaultFeedbackRing,
			"per-series provenance ring joined by /v1/feedback (0 disables feedback)")
		brierWindow = fs.Int("brier-window", monitor.DefaultWindow,
			"per-shard sliding window of the streaming Brier score")
		calibBins = fs.Int("calib-bins", monitor.DefaultBins,
			"reliability-histogram bins over predicted uncertainty")
		driftDelta = fs.Float64("drift-delta", -1,
			"Page-Hinkley tolerance on per-feedback Brier degradation "+
				"(negative means the package default; 0 is honoured as the strict "+
				"every-deviation-counts detector)")
		driftLambda = fs.Float64("drift-lambda", monitor.DefaultDriftLambda,
			"Page-Hinkley alarm threshold (must be > 0)")
		driftMinSamples = fs.Int("drift-min-samples", monitor.DefaultDriftMinSamples,
			"feedbacks required before a drift alarm can fire "+
				"(0 means the default; pass 1 to allow alarms from the first feedback)")
		autoRecalib = fs.Bool("auto-recalib", false,
			"recalibrate and hot-swap the taQIM automatically when the drift alarm fires")
		recalibMinLeaf = fs.Int("recalib-min-leaf", recalib.DefaultMinLeafFeedback,
			"minimum ground-truth feedbacks a taQIM leaf needs before its bound is refreshed "+
				"(0 means the default; negative disables the guard entirely)")
		recalibCooldown = fs.Duration("recalib-cooldown", recalib.DefaultCooldown,
			"minimum time between automatic recalibration attempts "+
				"(0 means the default; negative disables the cooldown)")
		recalibLaplace = fs.Int("recalib-laplace", 0,
			"add-alpha Laplace smoothing applied to refreshed leaf bounds (0 = off)")
		recalibDropPrior = fs.Bool("recalib-drop-prior", false,
			"recompute refreshed bounds from online evidence alone, discarding the offline calibration counts")
		stateDir = fs.String("state-dir", "",
			"directory for durable serving state (checkpoint + write-ahead log); "+
				"empty disables durability. On startup the directory is replayed, so "+
				"a restart resumes every open series, the calibration monitor, and "+
				"the recalibrated model where the previous process left them")
		flushInterval = fs.Duration("flush-interval", store.DefaultFlushInterval,
			"write-behind flush period: dirty series state is appended to the WAL "+
				"and fsynced this often, so a crash loses at most this much history")
		checkpointInterval = fs.Duration("checkpoint-interval", store.DefaultCheckpointInterval,
			"full-checkpoint period: how often the WAL is compacted into a "+
				"complete snapshot of every open series plus monitor state")
		walMaxBytes = fs.Int64("wal-max-bytes", store.DefaultMaxWALBytes,
			"WAL size that triggers an early compacting checkpoint (negative disables the size trigger)")
		storeRetryAttempts = fs.Int("store-retry-attempts", store.DefaultRetryAttempts,
			"tries per store operation before a flush/checkpoint cycle gives up "+
				"(1 disables retries); between tries the checkpointer backs off "+
				"exponentially from -store-retry-base with jitter")
		storeRetryBase = fs.Duration("store-retry-base", store.DefaultRetryBase,
			"initial backoff between store-operation retries")
		breakerThreshold = fs.Int("breaker-threshold", store.DefaultBreakerThreshold,
			"consecutive failed flush/checkpoint cycles that trip the circuit "+
				"breaker into degraded mode — durability suspended, traffic keeps "+
				"serving from RAM (negative disables the breaker)")
		breakerProbe = fs.Duration("breaker-probe", store.DefaultProbeInterval,
			"half-open probe interval while degraded; a successful probe writes "+
				"a full recovery checkpoint and restores durability")
		faultInject = fs.Bool("fault-inject", false,
			"TESTING ONLY: wrap the store in a fault injector and serve "+
				"POST /debug/fault to reprogram its fault plan at runtime")
		maxInflight = fs.Int("max-inflight", 0,
			"per-endpoint cap on concurrently processed hot requests "+
				"(step/steps/feedback; 0 = unlimited)")
		admissionQueue = fs.Int("admission-queue", 0,
			"bounded wait queue per hot endpoint once -max-inflight is "+
				"saturated; requests beyond it are shed with 429 (0 = shed "+
				"immediately at the cap)")
		requestTimeout = fs.Duration("request-timeout", 0,
			"deadline per hot request: spent waiting for admission (503 on "+
				"expiry) and propagated as a context through batch steps (0 = none)")
		readTimeout = fs.Duration("read-timeout", time.Minute,
			"max duration for reading an entire request, body included "+
				"(0 = no limit)")
		writeTimeout = fs.Duration("write-timeout", time.Minute,
			"max duration for writing a response (0 = no limit)")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second,
			"how long a shutdown waits for in-flight requests")
		drainGrace = fs.Duration("drain-grace", 0,
			"pause between flipping /readyz to 503 and closing the listener; "+
				"set it to the load balancer's readiness-probe interval so the probe "+
				"observes the 503 while the listener still accepts traffic")
		debugAddr = fs.String("debug-addr", "",
			"serve net/http/pprof on this separate listener (empty disables it); "+
				"bind it to loopback — the profiler is an operator surface and must "+
				"never share the public address")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateServeFlags(serveFlagValues{
		flushInterval:      *flushInterval,
		checkpointInterval: *checkpointInterval,
		walMaxBytes:        *walMaxBytes,
		stateDir:           *stateDir,
		faultInject:        *faultInject,
		storeRetryAttempts: *storeRetryAttempts,
		storeRetryBase:     *storeRetryBase,
		breakerProbe:       *breakerProbe,
		maxInflight:        *maxInflight,
		admissionQueue:     *admissionQueue,
		requestTimeout:     *requestTimeout,
		readTimeout:        *readTimeout,
		writeTimeout:       *writeTimeout,
		drainTimeout:       *drainTimeout,
		drainGrace:         *drainGrace,
	}); err != nil {
		return err
	}
	var cfg eval.StudyConfig
	switch *preset {
	case "tiny":
		cfg = eval.TinyConfig()
	case "quick":
		cfg = eval.QuickConfig()
	case "paper":
		cfg = eval.PaperConfig()
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}
	mainLog.Info("calibrating wrappers", "preset", cfg.Name)
	start := time.Now()
	st, err := eval.BuildStudy(cfg)
	if err != nil {
		return err
	}
	mainLog.Info("calibrated",
		"took", time.Since(start).Round(time.Millisecond),
		"ddm_test_accuracy", fmt.Sprintf("%.2f%%", 100*st.DDMTestAccuracy))
	// The flight recorder is always on (its hot-path cost is two atomic
	// operations per event); anomaly freezes surface as a structured log
	// line pointing the operator at /debug/flight/last-anomaly.
	traceLog := xlog.New("trace")
	flight := trace.New(trace.Config{
		OnAnomaly: func(reason string, at int64, events int) {
			traceLog.Error("anomaly snapshot frozen — GET /debug/flight/last-anomaly holds the window",
				"reason", reason, "events", events, "at_unix_ns", at)
		},
	})
	opts := []ServerOption{
		WithTrace(flight),
		WithPoolShards(*shards), WithMaxSeries(*maxSeries),
		WithBatchWorkers(*batchWorkers), WithBufferLimit(*bufferLimit),
		WithFeedbackRing(*feedbackRing),
		WithMonitorConfig(monitor.Config{
			Window: *brierWindow,
			Bins:   *calibBins,
			Drift:  driftConfigFromFlags(*driftDelta, *driftLambda, *driftMinSamples),
		}),
		WithRecalibration(recalib.Config{
			MinLeafFeedback: *recalibMinLeaf,
			Cooldown:        *recalibCooldown,
			LaplaceAlpha:    *recalibLaplace,
			DropPrior:       *recalibDropPrior,
		}),
		WithAutoRecalib(*autoRecalib),
		WithAdmission(*maxInflight, *admissionQueue),
		WithRequestTimeout(*requestTimeout),
	}
	if *stateDir != "" {
		opts = append(opts, WithDurability())
	}
	srv, err := NewServer(st.Base, st.TAQIM, simplex.DefaultTSRPolicy(), opts...)
	if err != nil {
		return err
	}

	// Durability attaches before the listener opens: recovery replays the
	// previous process's state into the still-idle pool, then the
	// write-behind checkpointer starts persisting on its own clock.
	var cp *store.Checkpointer
	if *stateDir != "" {
		cp, err = srv.attachDurability(durabilityConfig{
			stateDir:           *stateDir,
			flushInterval:      *flushInterval,
			checkpointInterval: *checkpointInterval,
			walMaxBytes:        *walMaxBytes,
			retryAttempts:      *storeRetryAttempts,
			retryBase:          *storeRetryBase,
			breakerThreshold:   *breakerThreshold,
			probeInterval:      *breakerProbe,
			faultInject:        *faultInject,
		})
		if err != nil {
			return err
		}
	}
	// Server-side timeouts bound what a slow or stalled client can hold: a
	// connection that cannot deliver its body or take its response within
	// the window is cut, freeing its goroutine and (under admission) its
	// queue slot.
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
	}

	// The binary streaming transport listens alongside HTTP when enabled;
	// its drain rides the same shutdown sequence (see serveUntilShutdown).
	if *tcpAddr != "" {
		ln, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			return fmt.Errorf("binary transport listener: %w", err)
		}
		go func() {
			if err := srv.ServeWire(ln); err != nil {
				mainLog.Error("binary transport listener failed", "err", err)
			}
		}()
		mainLog.Info("binary transport listening", "addr", *tcpAddr)
	}

	// The debug listener serves the stdlib profiler (and nothing else) on
	// its own address, so taking a CPU profile or a goroutine dump during an
	// incident needs no redeploy — and no exposure on the public port.
	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				mainLog.Error("debug (pprof) listener failed", "err", err)
			}
		}()
		mainLog.Info("debug (pprof) listener enabled", "addr", *debugAddr)
	}

	// Graceful shutdown: the first SIGINT/SIGTERM flips readiness and
	// drains in-flight requests; a second signal (stop() restores default
	// handling) kills the process the classic way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	mainLog.Info("listening", "addr", *addr)
	return serveUntilShutdown(ctx, stop, httpServer, srv, cp, *drainGrace, *drainTimeout, httpServer.ListenAndServe)
}

// serveFlagValues is the parsed flag subset validateServeFlags checks; a
// struct (rather than a parameter list) so the table test in main_test.go
// can name the field it perturbs.
type serveFlagValues struct {
	flushInterval      time.Duration
	checkpointInterval time.Duration
	walMaxBytes        int64
	stateDir           string
	faultInject        bool
	storeRetryAttempts int
	storeRetryBase     time.Duration
	breakerProbe       time.Duration
	maxInflight        int
	admissionQueue     int
	requestTimeout     time.Duration
	readTimeout        time.Duration
	writeTimeout       time.Duration
	drainTimeout       time.Duration
	drainGrace         time.Duration
}

// validateServeFlags rejects flag values whose runtime behavior would be
// undefined (a negative ticker interval panics time.NewTicker; a zero
// -wal-max-bytes means "default" to the config but reads like "no limit")
// with one clear startup error instead of a crash or a silent surprise
// minutes into serving.
func validateServeFlags(v serveFlagValues) error {
	if v.flushInterval < 0 {
		return fmt.Errorf("-flush-interval %v must be >= 0", v.flushInterval)
	}
	if v.checkpointInterval < 0 {
		return fmt.Errorf("-checkpoint-interval %v must be >= 0", v.checkpointInterval)
	}
	if v.walMaxBytes == 0 {
		return fmt.Errorf("-wal-max-bytes 0 is ambiguous: pass a positive size, or a negative one to disable the size trigger")
	}
	if v.storeRetryAttempts < 0 {
		return fmt.Errorf("-store-retry-attempts %d must be >= 0", v.storeRetryAttempts)
	}
	if v.storeRetryBase < 0 {
		return fmt.Errorf("-store-retry-base %v must be >= 0", v.storeRetryBase)
	}
	if v.breakerProbe < 0 {
		return fmt.Errorf("-breaker-probe %v must be >= 0", v.breakerProbe)
	}
	if v.maxInflight < 0 {
		return fmt.Errorf("-max-inflight %d must be >= 0", v.maxInflight)
	}
	if v.admissionQueue < 0 {
		return fmt.Errorf("-admission-queue %d must be >= 0", v.admissionQueue)
	}
	if v.requestTimeout < 0 {
		return fmt.Errorf("-request-timeout %v must be >= 0", v.requestTimeout)
	}
	if v.readTimeout < 0 {
		return fmt.Errorf("-read-timeout %v must be >= 0", v.readTimeout)
	}
	if v.writeTimeout < 0 {
		return fmt.Errorf("-write-timeout %v must be >= 0", v.writeTimeout)
	}
	if v.drainTimeout < 0 {
		return fmt.Errorf("-drain-timeout %v must be >= 0", v.drainTimeout)
	}
	if v.drainGrace < 0 {
		return fmt.Errorf("-drain-grace %v must be >= 0", v.drainGrace)
	}
	if v.faultInject && v.stateDir == "" {
		return fmt.Errorf("-fault-inject needs -state-dir: there is no store to inject faults into")
	}
	return nil
}

// driftConfigFromFlags maps the drift flags onto monitor.DriftConfig. The
// -drift-delta flag uses a negative sentinel for "package default" so that
// an explicit 0 — the strict detector where every deviation above the
// running mean counts — survives to the detector instead of being folded
// into the default (the DriftConfig.DeltaSet regression).
func driftConfigFromFlags(delta, lambda float64, minSamples int) monitor.DriftConfig {
	cfg := monitor.DriftConfig{
		Lambda:     lambda,
		MinSamples: minSamples,
	}
	if delta >= 0 {
		cfg.Delta = delta
		cfg.DeltaSet = true
	}
	return cfg
}

// serveUntilShutdown runs the listener until it fails or ctx is cancelled
// (a termination signal in production); on cancellation it flips readiness
// off so load balancers drain the instance, keeps the listener open for
// drainGrace so readiness probes can actually observe the 503 before new
// connections start being refused, then waits up to drainTimeout for
// in-flight requests via http.Server.Shutdown and logs a final monitoring
// summary. When durability is attached (cp non-nil), the drain ends with a
// final full checkpoint after the last in-flight request has finished, so a
// clean shutdown persists every served step. restoreSignals
// (signal.NotifyContext's stop; nil in tests) runs before the waits so a
// second signal regains its default disposition and kills the process
// instead of being swallowed for the whole grace+timeout. Factored out of
// run so the drain sequence is testable without sending the test process a
// signal.
func serveUntilShutdown(ctx context.Context, restoreSignals func(), httpServer *http.Server,
	srv *Server, cp *store.Checkpointer, drainGrace, drainTimeout time.Duration, listen func() error) error {
	errCh := make(chan error, 1)
	go func() { errCh <- listen() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		if restoreSignals != nil {
			restoreSignals()
		}
		srv.SetReady(false)
		if drainGrace > 0 {
			mainLog.Info("shutdown requested; /readyz now 503, still accepting traffic (drain grace)",
				"grace", drainGrace)
			time.Sleep(drainGrace)
		}
		mainLog.Info("draining in-flight requests", "timeout", drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := httpServer.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("drain incomplete: %w", err)
		}
		// The binary transport drains inside the same timeout window: idle
		// connections unblock immediately, in-flight frames complete.
		if err := srv.ShutdownWire(shutdownCtx); err != nil {
			return err
		}
		// The final checkpoint runs after the last in-flight request: at
		// this point no step is mutating pool state anymore, so the blob is
		// the complete serving history.
		if cp != nil {
			if err := cp.Stop(); err != nil {
				return fmt.Errorf("final checkpoint: %w", err)
			}
			mainLog.Info("final checkpoint written",
				"checkpoints", cp.CheckpointStats().Checkpoints,
				"flushes", cp.CheckpointStats().Flushes)
		}
		snap := srv.Calibration().Snapshot()
		mainLog.Info("drained cleanly",
			"steps_served", srv.pool.StepCount(), "feedbacks", snap.Feedbacks,
			"windowed_brier", fmt.Sprintf("%.4f", snap.WindowedBrier))
		return nil
	}
}
