package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/iese-repro/tauw/internal/augment"
	"github.com/iese-repro/tauw/internal/eval"
	"github.com/iese-repro/tauw/internal/simplex"
)

// testServerWith is testServer with server options (budget caps, shard
// overrides) for the batch and regression tests.
func testServerWith(t *testing.T, opts ...ServerOption) *httptest.Server {
	t.Helper()
	studyOnce.Do(func() {
		cfg := eval.TinyConfig()
		cfg.NumSeries = 90
		cfg.TrainAugmentations = 3
		cfg.EvalAugmentations = 3
		studyVal, studyErr = eval.BuildStudy(cfg)
	})
	if studyErr != nil {
		t.Fatalf("BuildStudy: %v", studyErr)
	}
	srv, err := NewServer(studyVal.Base, studyVal.TAQIM, simplex.DefaultTSRPolicy(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func newSeries(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp := postJSON(t, ts.URL+"/v1/series", struct{}{})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("new series = %d", resp.StatusCode)
	}
	return decode[newSeriesResponse](t, resp).SeriesID
}

// TestServerBatchStepMixed posts one batch mixing healthy steps, an unknown
// series, and an invalid quality map: each item gets its own status, valid
// items are served, and the summary counters add up.
func TestServerBatchStepMixed(t *testing.T) {
	ts := testServer(t)
	a := newSeries(t, ts)
	b := newSeries(t, ts)

	req := batchStepRequest{Steps: []stepRequest{
		{SeriesID: a, Outcome: 14, Quality: map[string]float64{"rain": 0.1}, PixelSize: 180},
		{SeriesID: "ghost", Outcome: 14, PixelSize: 180},
		{SeriesID: b, Outcome: 7, PixelSize: 150},
		{SeriesID: a, Outcome: 14, Quality: map[string]float64{"bogus": 0.5}, PixelSize: 180},
		{SeriesID: a, Outcome: 14, PixelSize: 180},
	}}
	resp := postJSON(t, ts.URL+"/v1/steps", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d", resp.StatusCode)
	}
	got := decode[batchStepResponse](t, resp)
	if len(got.Results) != len(req.Steps) {
		t.Fatalf("%d results, want %d", len(got.Results), len(req.Steps))
	}
	wantStatus := []int{200, 404, 200, 400, 200}
	for i, w := range wantStatus {
		if got.Results[i].Status != w {
			t.Errorf("item %d status = %d (%s), want %d", i, got.Results[i].Status, got.Results[i].Error, w)
		}
	}
	if got.OK != 3 || got.Failed != 2 {
		t.Errorf("ok/failed = %d/%d, want 3/2", got.OK, got.Failed)
	}
	// Items 0 and 4 both stepped series a, in request order.
	if got.Results[0].Step == nil || got.Results[4].Step == nil {
		t.Fatal("successful items missing step payloads")
	}
	if got.Results[0].Step.SeriesLen != 1 || got.Results[4].Step.SeriesLen != 2 {
		t.Errorf("series %q lengths = %d,%d, want 1,2",
			a, got.Results[0].Step.SeriesLen, got.Results[4].Step.SeriesLen)
	}
	if got.Results[2].Step.SeriesID != b {
		t.Errorf("item 2 echoes series %q, want %q", got.Results[2].Step.SeriesID, b)
	}
	for _, i := range []int{0, 2, 4} {
		s := got.Results[i].Step
		if s.Uncertainty < 0 || s.Uncertainty > 1 {
			t.Errorf("item %d uncertainty %g out of range", i, s.Uncertainty)
		}
		if s.Countermeasure == "" {
			t.Errorf("item %d missing countermeasure", i)
		}
	}
	// Failed items carry errors, not payloads.
	for _, i := range []int{1, 3} {
		if got.Results[i].Step != nil {
			t.Errorf("item %d has a payload despite status %d", i, got.Results[i].Status)
		}
		if got.Results[i].Error == "" {
			t.Errorf("item %d missing error message", i)
		}
	}
}

// TestServerBatchAgreesWithSingleStep drives one series through /v1/steps
// and a twin series through /v1/step: the uncertainties must match exactly
// step for step.
func TestServerBatchAgreesWithSingleStep(t *testing.T) {
	ts := testServer(t)
	viaBatch := newSeries(t, ts)
	viaSingle := newSeries(t, ts)

	const steps = 5
	batch := batchStepRequest{}
	for i := 0; i < steps; i++ {
		batch.Steps = append(batch.Steps, stepRequest{
			SeriesID: viaBatch, Outcome: 14,
			Quality:   map[string]float64{"darkness": 0.2},
			PixelSize: 160,
		})
	}
	resp := postJSON(t, ts.URL+"/v1/steps", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d", resp.StatusCode)
	}
	batched := decode[batchStepResponse](t, resp)

	for i := 0; i < steps; i++ {
		resp := postJSON(t, ts.URL+"/v1/step", stepRequest{
			SeriesID: viaSingle, Outcome: 14,
			Quality:   map[string]float64{"darkness": 0.2},
			PixelSize: 160,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("single step %d = %d", i, resp.StatusCode)
		}
		single := decode[stepResponse](t, resp)
		b := batched.Results[i].Step
		if b == nil {
			t.Fatalf("batch item %d failed: %s", i, batched.Results[i].Error)
		}
		if b.SeriesLen != single.SeriesLen || b.FusedOutcome != single.FusedOutcome ||
			b.Uncertainty != single.Uncertainty || b.Countermeasure != single.Countermeasure {
			t.Errorf("step %d diverges: batch (%d,%d,%g,%s) vs single (%d,%d,%g,%s)", i,
				b.SeriesLen, b.FusedOutcome, b.Uncertainty, b.Countermeasure,
				single.SeriesLen, single.FusedOutcome, single.Uncertainty, single.Countermeasure)
		}
	}
}

func TestServerBatchValidation(t *testing.T) {
	ts := testServer(t)

	// Empty batch.
	resp := postJSON(t, ts.URL+"/v1/steps", batchStepRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Malformed JSON.
	r, err := http.Post(ts.URL+"/v1/steps", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON = %d, want 400", r.StatusCode)
	}

	// Too many items (but under the byte cap): the item-count rejection.
	over := batchStepRequest{Steps: make([]stepRequest, maxBatchItems+1)}
	for i := range over.Steps {
		over.Steps[i] = stepRequest{SeriesID: "x", Outcome: 1, PixelSize: 100}
	}
	resp = postJSON(t, ts.URL+"/v1/steps", over)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Body over the byte cap: rejected at the transport with 413, the
	// "split your batch" signal, before any decoding allocates it.
	pad := strings.Repeat("x", maxStepBodyBytes+1)
	r, err = http.Post(ts.URL+"/v1/step", "application/json",
		strings.NewReader(`{"series_id":"`+pad+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("over-cap body = %d, want 413", r.StatusCode)
	}
}

// TestServerSeriesLeakRegression is the HTTP-level regression test for the
// series leak: when opening a series fails (budget exhausted), the minted id
// must not linger — stepping it must answer 404 (unknown series), not 500.
func TestServerSeriesLeakRegression(t *testing.T) {
	ts := testServerWith(t, WithMaxSeries(1))

	id := newSeries(t, ts)
	resp := postJSON(t, ts.URL+"/v1/series", struct{}{})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-budget create = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	// Pre-fix, the failed create leaked its freshly minted id ("s2") into
	// the registry and a step on it answered 500 (unknown track).
	resp = postJSON(t, ts.URL+"/v1/step", stepRequest{SeriesID: "s2", Outcome: 1, PixelSize: 100})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("step on leaked id = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// Closing the survivor frees the budget again.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/series/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete = %d", resp.StatusCode)
	}
	if got := newSeries(t, ts); got == "" {
		t.Error("create after close must succeed")
	}
}

// TestServerConcurrentBatchClients fires single-step and batch clients at
// the server simultaneously (run under -race): every request must succeed
// and the stats must account for every gated step.
func TestServerConcurrentBatchClients(t *testing.T) {
	ts := testServerWith(t, WithPoolShards(8), WithBatchWorkers(4))
	const (
		clients  = 8
		rounds   = 5
		perBatch = 10
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp := postJSONNoT(ts.URL+"/v1/series", struct{}{})
			if resp == nil || resp.StatusCode != http.StatusCreated {
				errs <- fmt.Errorf("client %d: create failed", c)
				return
			}
			var created newSeriesResponse
			err := json.NewDecoder(resp.Body).Decode(&created)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			for r := 0; r < rounds; r++ {
				if c%2 == 0 {
					// Batch client: one request, perBatch steps.
					batch := batchStepRequest{}
					for i := 0; i < perBatch; i++ {
						batch.Steps = append(batch.Steps, stepRequest{
							SeriesID: created.SeriesID, Outcome: c % 3, PixelSize: 150,
						})
					}
					resp := postJSONNoT(ts.URL+"/v1/steps", batch)
					if resp == nil || resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("client %d: batch failed", c)
						return
					}
					var got batchStepResponse
					err := json.NewDecoder(resp.Body).Decode(&got)
					resp.Body.Close()
					if err != nil {
						errs <- err
						return
					}
					if got.OK != perBatch || got.Failed != 0 {
						errs <- fmt.Errorf("client %d: batch ok/failed = %d/%d", c, got.OK, got.Failed)
						return
					}
				} else {
					// Single-step client: perBatch requests.
					for i := 0; i < perBatch; i++ {
						resp := postJSONNoT(ts.URL+"/v1/step", stepRequest{
							SeriesID: created.SeriesID, Outcome: c % 3, PixelSize: 150,
						})
						if resp == nil || resp.StatusCode != http.StatusOK {
							errs <- fmt.Errorf("client %d: step failed", c)
							return
						}
						resp.Body.Close()
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decode[statsResponse](t, resp)
	if want := clients * rounds * perBatch; stats.Gated != want {
		t.Errorf("gated = %d, want %d", stats.Gated, want)
	}
	if stats.ActiveSeries != clients {
		t.Errorf("active = %d, want %d", stats.ActiveSeries, clients)
	}
	if stats.PoolShards != 8 {
		t.Errorf("pool shards = %d, want 8", stats.PoolShards)
	}
}

// TestQualityFromMap is the table-driven edge-case suite for the quality
// vector assembly shared by both step endpoints.
func TestQualityFromMap(t *testing.T) {
	names := augment.Names()
	cases := []struct {
		name      string
		m         map[string]float64
		pixelSize float64
		wantErr   string
	}{
		{name: "nil map ok", m: nil, pixelSize: 100},
		{name: "empty map ok", m: map[string]float64{}, pixelSize: 100},
		{name: "all channels at bounds", m: func() map[string]float64 {
			m := make(map[string]float64)
			for i, n := range names {
				m[n] = float64(i % 2) // alternate 0 and 1, both legal
			}
			return m
		}(), pixelSize: 1},
		{name: "unknown factor", m: map[string]float64{"bogus": 0.5}, pixelSize: 100, wantErr: "unknown quality factor"},
		{name: "below range", m: map[string]float64{names[0]: -0.01}, pixelSize: 100, wantErr: "outside [0,1]"},
		{name: "above range", m: map[string]float64{names[0]: 1.01}, pixelSize: 100, wantErr: "outside [0,1]"},
		{name: "NaN intensity", m: map[string]float64{names[0]: math.NaN()}, pixelSize: 100, wantErr: "outside [0,1]"},
		{name: "zero pixel size", m: nil, pixelSize: 0, wantErr: "pixel_size must be positive"},
		{name: "NaN pixel size", m: nil, pixelSize: math.NaN(), wantErr: "pixel_size must be positive"},
		{name: "negative pixel size", m: nil, pixelSize: -4, wantErr: "pixel_size must be positive"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			qf, err := qualityFromMap(c.m, c.pixelSize)
			if c.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), c.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(qf) != len(names)+1 {
				t.Fatalf("vector len %d, want %d", len(qf), len(names)+1)
			}
			if qf[len(names)] != c.pixelSize {
				t.Errorf("pixel slot = %g, want %g", qf[len(names)], c.pixelSize)
			}
			for i, n := range names {
				if want := c.m[n]; qf[i] != want {
					t.Errorf("channel %q = %g, want %g", n, qf[i], want)
				}
			}
		})
	}
}
