// durability.go wires the write-behind durability layer (internal/store)
// into the server: -state-dir opens a file store (checkpoint + WAL) in the
// given directory, serving state is restored from it before the listener
// opens, and a background checkpointer persists dirty series on its own
// clock while the step hot path stays storage-free. The drain sequence ends
// with a final full checkpoint, so a clean shutdown loses nothing and a
// crash loses at most the last -flush-interval of steps.
package main

import (
	"fmt"
	"time"

	"github.com/iese-repro/tauw/internal/store"
	"github.com/iese-repro/tauw/internal/xlog"
)

// durLog reports the durability layer's lifecycle (recovery, fault
// injection arming) as structured component=durability records; the
// checkpointer's own cycle reporting runs under component=store.
var durLog = xlog.New("durability")

// WithDurability arms the pool's close journal so series closes reach the
// WAL. Must be set when a store will be attached: without the journal a
// close between two flushes would leave the closed series' last snapshot in
// the log, and recovery would resurrect it.
func WithDurability() ServerOption {
	return func(o *serverOptions) { o.journal = true }
}

// durabilityConfig carries the -state-dir flag family.
type durabilityConfig struct {
	stateDir           string
	flushInterval      time.Duration
	checkpointInterval time.Duration
	walMaxBytes        int64
	retryAttempts      int
	retryBase          time.Duration
	breakerThreshold   int
	probeInterval      time.Duration
	// faultInject wraps the file store in a store.FaultStore and routes
	// POST /debug/fault — the chaos harness's control surface. Testing
	// only; never set it in production.
	faultInject bool
}

// attachDurability opens the state directory, restores serving state into
// the freshly built (still traffic-free) server, writes an immediate
// post-recovery checkpoint so the next crash recovers from a compact blob
// instead of re-replaying the old WAL tail, and starts the write-behind
// loop. It returns the running checkpointer; the caller owns the final
// Stop (see serveUntilShutdown).
func (s *Server) attachDurability(cfg durabilityConfig) (*store.Checkpointer, error) {
	fs, err := store.OpenFileStore(cfg.stateDir)
	if err != nil {
		return nil, fmt.Errorf("opening state dir: %w", err)
	}
	var st store.Store = fs
	if cfg.faultInject {
		// The chaos harness's store: every operation passes through the
		// runtime-scriptable fault plan that POST /debug/fault reprograms.
		s.faults = store.NewFaultStore(fs)
		st = s.faults
		durLog.Warn("fault injection ARMED (-fault-inject): POST /debug/fault reprograms the store fault plan — testing only")
	}
	start := time.Now()
	rs, err := store.Recover(st, s.pool, s.calib, s.leafStats)
	if err != nil {
		fs.Close()
		return nil, fmt.Errorf("recovering state from %s: %w", cfg.stateDir, err)
	}
	durLog.Info("recovered state",
		"dir", cfg.stateDir, "took", time.Since(start).Round(time.Millisecond),
		"series", rs.Series, "wal_records", rs.Records, "closes", rs.Closes,
		"model_version", rs.ModelVersion, "had_checkpoint", rs.HadCheckpoint)
	cp, err := store.NewCheckpointer(st, s.pool, s.calib, s.leafStats, store.CheckpointConfig{
		FlushInterval:      cfg.flushInterval,
		CheckpointInterval: cfg.checkpointInterval,
		MaxWALBytes:        cfg.walMaxBytes,
		RetryAttempts:      cfg.retryAttempts,
		RetryBase:          cfg.retryBase,
		BreakerThreshold:   cfg.breakerThreshold,
		ProbeInterval:      cfg.probeInterval,
		Trace:              s.trace,
		Stages:             s.stages,
	})
	if err != nil {
		fs.Close()
		return nil, err
	}
	if err := cp.Checkpoint(); err != nil {
		fs.Close()
		return nil, fmt.Errorf("post-recovery checkpoint: %w", err)
	}
	cp.Start()
	s.expo.Checkpoint = cp
	// /readyz reports degraded mode from here on: before a store is
	// attached there is no durability to suspend.
	s.degraded = cp.Degraded
	return cp, nil
}
