// durability.go wires the write-behind durability layer (internal/store)
// into the server: -state-dir opens a file store (checkpoint + WAL) in the
// given directory, serving state is restored from it before the listener
// opens, and a background checkpointer persists dirty series on its own
// clock while the step hot path stays storage-free. The drain sequence ends
// with a final full checkpoint, so a clean shutdown loses nothing and a
// crash loses at most the last -flush-interval of steps.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/iese-repro/tauw/internal/store"
)

// WithDurability arms the pool's close journal so series closes reach the
// WAL. Must be set when a store will be attached: without the journal a
// close between two flushes would leave the closed series' last snapshot in
// the log, and recovery would resurrect it.
func WithDurability() ServerOption {
	return func(o *serverOptions) { o.journal = true }
}

// durabilityConfig carries the -state-dir flag family.
type durabilityConfig struct {
	stateDir           string
	flushInterval      time.Duration
	checkpointInterval time.Duration
	walMaxBytes        int64
}

// attachDurability opens the state directory, restores serving state into
// the freshly built (still traffic-free) server, writes an immediate
// post-recovery checkpoint so the next crash recovers from a compact blob
// instead of re-replaying the old WAL tail, and starts the write-behind
// loop. It returns the running checkpointer; the caller owns the final
// Stop (see serveUntilShutdown).
func (s *Server) attachDurability(cfg durabilityConfig) (*store.Checkpointer, error) {
	fs, err := store.OpenFileStore(cfg.stateDir)
	if err != nil {
		return nil, fmt.Errorf("opening state dir: %w", err)
	}
	start := time.Now()
	rs, err := store.Recover(fs, s.pool, s.calib, s.leafStats)
	if err != nil {
		fs.Close()
		return nil, fmt.Errorf("recovering state from %s: %w", cfg.stateDir, err)
	}
	log.Printf("recovered state from %s in %v: %d live series, %d WAL records, %d closes, model version %d (checkpoint: %v)",
		cfg.stateDir, time.Since(start).Round(time.Millisecond),
		rs.Series, rs.Records, rs.Closes, rs.ModelVersion, rs.HadCheckpoint)
	cp, err := store.NewCheckpointer(fs, s.pool, s.calib, s.leafStats, store.CheckpointConfig{
		FlushInterval:      cfg.flushInterval,
		CheckpointInterval: cfg.checkpointInterval,
		MaxWALBytes:        cfg.walMaxBytes,
	})
	if err != nil {
		fs.Close()
		return nil, err
	}
	if err := cp.Checkpoint(); err != nil {
		fs.Close()
		return nil, fmt.Errorf("post-recovery checkpoint: %w", err)
	}
	cp.Start()
	s.expo.Checkpoint = cp
	return cp, nil
}
