package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"github.com/iese-repro/tauw/internal/augment"
	"github.com/iese-repro/tauw/internal/core"
	"github.com/iese-repro/tauw/internal/simplex"
	"github.com/iese-repro/tauw/internal/uw"
)

// Server exposes a calibrated timeseries-aware uncertainty wrapper as a
// runtime-monitoring HTTP service: perception components stream their
// momentaneous outcomes and quality factors per tracked object, and receive
// the fused outcome, its dependable uncertainty, and the simplex
// countermeasure to take.
type Server struct {
	taqim   *uw.QualityImpactModel
	monitor *simplex.Monitor
	pool    *core.WrapperPool

	mu     sync.Mutex
	ids    map[string]int
	nextID int
}

// NewServer wires a server from calibrated models.
func NewServer(base *uw.Wrapper, taqim *uw.QualityImpactModel, policy simplex.Policy) (*Server, error) {
	if base == nil || taqim == nil {
		return nil, errors.New("tauserve: base wrapper and taQIM are required")
	}
	monitor, err := simplex.NewMonitor(policy)
	if err != nil {
		return nil, err
	}
	pool, err := core.NewWrapperPool(base, taqim, core.Config{}, 0)
	if err != nil {
		return nil, err
	}
	return &Server{
		taqim:   taqim,
		monitor: monitor,
		pool:    pool,
		ids:     make(map[string]int),
	}, nil
}

// Handler returns the HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/series", s.handleNewSeries)
	mux.HandleFunc("DELETE /v1/series/{id}", s.handleEndSeries)
	mux.HandleFunc("POST /v1/step", s.handleStep)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/model/rules", s.handleRules)
	mux.HandleFunc("GET /v1/model/leaves", s.handleLeaves)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// newSeriesResponse is the body of POST /v1/series.
type newSeriesResponse struct {
	SeriesID string `json:"series_id"`
}

func (s *Server) handleNewSeries(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	s.nextID++
	track := s.nextID
	id := "s" + strconv.Itoa(track)
	s.ids[id] = track
	s.mu.Unlock()
	if err := s.pool.Open(track); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusCreated, newSeriesResponse{SeriesID: id})
}

func (s *Server) handleEndSeries(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	track, ok := s.ids[id]
	delete(s.ids, id)
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown series %q", id))
		return
	}
	if err := s.pool.Close(track); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// stepRequest is the body of POST /v1/step: one momentaneous DDM outcome
// with the quality factors observed alongside it.
type stepRequest struct {
	SeriesID string `json:"series_id"`
	// Outcome is the DDM's class decision for the current frame.
	Outcome int `json:"outcome"`
	// Quality maps quality-factor names (the nine deficit channels) to
	// intensities in [0,1].
	Quality map[string]float64 `json:"quality"`
	// PixelSize is the apparent sign size in pixels.
	PixelSize float64 `json:"pixel_size"`
}

// stepResponse reports the fused outcome, its dependable uncertainty, and
// the selected countermeasure.
type stepResponse struct {
	SeriesID       string  `json:"series_id"`
	FusedOutcome   int     `json:"fused_outcome"`
	Uncertainty    float64 `json:"uncertainty"`
	StatelessU     float64 `json:"stateless_uncertainty"`
	SeriesLen      int     `json:"series_len"`
	Countermeasure string  `json:"countermeasure"`
	Accepted       bool    `json:"accepted"`
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	var req stepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	quality, err := qualityFromMap(req.Quality, req.PixelSize)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	track, ok := s.ids[req.SeriesID]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown series %q", req.SeriesID))
		return
	}
	res, err := s.pool.Step(track, req.Outcome, quality)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	decision, err := s.monitor.Gate(res.Fused, res.Uncertainty)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, stepResponse{
		SeriesID:       req.SeriesID,
		FusedOutcome:   res.Fused,
		Uncertainty:    res.Uncertainty,
		StatelessU:     res.Stateless.Uncertainty,
		SeriesLen:      res.SeriesLen,
		Countermeasure: decision.Level.Name,
		Accepted:       decision.Accepted,
	})
}

// qualityFromMap assembles the wrapper's quality-factor vector from named
// channels; missing channels default to 0 (no deficit), unknown names fail.
func qualityFromMap(m map[string]float64, pixelSize float64) ([]float64, error) {
	names := augment.Names()
	index := make(map[string]int, len(names))
	for i, n := range names {
		index[n] = i
	}
	qf := make([]float64, len(names)+1)
	for name, v := range m {
		i, ok := index[name]
		if !ok {
			return nil, fmt.Errorf("unknown quality factor %q", name)
		}
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("quality factor %q = %g outside [0,1]", name, v)
		}
		qf[i] = v
	}
	if pixelSize <= 0 {
		return nil, fmt.Errorf("pixel_size must be positive, got %g", pixelSize)
	}
	qf[len(names)] = pixelSize
	return qf, nil
}

// statsResponse is the body of GET /v1/stats.
type statsResponse struct {
	ActiveSeries int            `json:"active_series"`
	Gated        int            `json:"gated_total"`
	PerLevel     map[string]int `json:"per_countermeasure"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.monitor.Snapshot()
	active := s.pool.Active()
	writeJSON(w, http.StatusOK, statsResponse{
		ActiveSeries: active,
		Gated:        snap.Total,
		PerLevel:     snap.PerLevel,
	})
}

func (s *Server) handleRules(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "=== timeseries-aware quality impact model ===")
	fmt.Fprint(w, s.taqim.Rules())
}

// handleLeaves exposes the machine-readable audit report: every calibrated
// region with its bound, calibration evidence, and routing conditions.
func (s *Server) handleLeaves(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.taqim.LeafReport())
}

type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Encoding failures after the header is written can only be logged;
	// the stdlib encoder cannot fail on these plain structs.
	_ = json.NewEncoder(w).Encode(v)
}
