package main

import (
	"context"
	//tauwcheck:ignore codecpure cold admin responses only; hot codecs are hand-rolled in codec.go
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/iese-repro/tauw/internal/augment"
	"github.com/iese-repro/tauw/internal/core"
	"github.com/iese-repro/tauw/internal/monitor"
	"github.com/iese-repro/tauw/internal/recalib"
	"github.com/iese-repro/tauw/internal/simplex"
	"github.com/iese-repro/tauw/internal/store"
	"github.com/iese-repro/tauw/internal/trace"
	"github.com/iese-repro/tauw/internal/uw"
	"github.com/iese-repro/tauw/internal/xlog"
	"github.com/iese-repro/tauw/internal/xslice"
)

// maxBatchItems caps one POST /v1/steps request; larger batches should be
// split by the client.
const maxBatchItems = 4096

// Request bodies are size-capped before decoding so a hostile payload is
// rejected at the transport instead of allocated in full: the item cap
// alone would only be checked after json.Decode had materialised the slice.
const (
	maxStepBodyBytes  = 1 << 20  // one step plus slack
	maxBatchBodyBytes = 16 << 20 // maxBatchItems generously sized steps
)

// Server exposes a calibrated timeseries-aware uncertainty wrapper as a
// runtime-monitoring HTTP service: perception components stream their
// momentaneous outcomes and quality factors per tracked object, and receive
// the fused outcome, its dependable uncertainty, and the simplex
// countermeasure to take. Ground truth reported back through POST
// /v1/feedback feeds the runtime calibration monitor, whose reliability
// statistics and drift alarms GET /metrics exposes in Prometheus text
// format.
//
// All session state (series ids and their wrappers) lives in the sharded
// core.WrapperPool; the server itself holds no lock and no per-request
// mutable state beyond shard-aligned monitoring counters, so request
// handling scales with the pool's shard count.
type Server struct {
	gate         *simplex.Monitor
	pool         *core.WrapperPool
	batchWorkers int

	// calib is the runtime calibration monitor fed by /v1/feedback; expo
	// renders it (plus the pool counters, gate counts, and the latency
	// histograms) for /metrics.
	calib       *monitor.Monitor
	expo        *monitor.Exposition
	latStep     *monitor.LatencyHist
	latBatch    *monitor.LatencyHist
	latFeedback *monitor.LatencyHist
	// stages times the request pipeline's internal stages (decode, step,
	// encode here; store_append/checkpoint/fsync in the durability layer)
	// for the tauw_stage_duration_seconds exposition.
	stages *monitor.StageSet

	// trace is the flight recorder every layer records into (nil disables
	// tracing and the /debug/flight routes); flightBuf and anomBuf are the
	// dump endpoints' reusable event buffers, guarded by flightMu.
	trace     *trace.Recorder
	flightMu  sync.Mutex
	flightBuf []trace.Event
	anomBuf   []trace.Event

	// leafStats attributes each feedback verdict to the taQIM region that
	// produced the judged estimate; recal turns that evidence into model
	// hot-swaps (POST /v1/recalibrate, and — when autoRecalib is set — the
	// automatic response to a drift alarm).
	leafStats   *monitor.LeafStats
	recal       *recalib.Recalibrator
	autoRecalib bool

	// ready gates /readyz: flipped false by SetReady when the process
	// starts draining, so load balancers stop routing new work while
	// in-flight batches finish.
	ready atomic.Bool

	// adm is the per-endpoint overload gate (see admission.go);
	// requestTimeout is the hot-request deadline it sheds against, also
	// propagated as a context through pool batch steps. degraded reports
	// the durability circuit breaker's state for /readyz (nil when no
	// store is attached — never degraded).
	adm            admission
	requestTimeout time.Duration
	degraded       func() bool

	// faults is the fault-injection wrapper around the store when the
	// chaos harness armed it (-fault-inject); Handler registers the
	// /debug/fault endpoint only then.
	faults *store.FaultStore

	// wire is the binary-transport listener when one is serving (see
	// wire.go); ShutdownWire drains it alongside the HTTP drain.
	wireMu sync.Mutex
	wire   *wireServer
}

// ServerOption customises server construction.
type ServerOption func(*serverOptions)

type serverOptions struct {
	maxSeries      int
	shards         int
	batchWorkers   int
	bufferLimit    int
	feedbackRing   int
	monitorCfg     monitor.Config
	recalibCfg     recalib.Config
	autoRecalib    bool
	journal        bool
	maxInflight    int
	admissionQueue int
	requestTimeout time.Duration
	trace          *trace.Recorder
}

// DefaultFeedbackRing is the default per-series provenance-ring length:
// ground truth may trail a served estimate by up to this many steps of the
// same series and still join. At 40 bytes per slot the default costs 10 KiB
// per open series.
const DefaultFeedbackRing = 256

// WithMaxSeries caps the number of concurrently open series (0 = unlimited).
// When the cap is reached, POST /v1/series answers 503 until a series ends.
func WithMaxSeries(n int) ServerOption {
	return func(o *serverOptions) { o.maxSeries = n }
}

// WithPoolShards overrides the wrapper pool's shard count (0 = default).
func WithPoolShards(n int) ServerOption {
	return func(o *serverOptions) { o.shards = n }
}

// WithBatchWorkers bounds the per-request fan-out of POST /v1/steps
// (0 = one worker per schedulable CPU).
func WithBatchWorkers(n int) ServerOption {
	return func(o *serverOptions) { o.batchWorkers = n }
}

// WithBufferLimit caps each series' timeseries buffer (0 = unbounded). The
// step hot path is O(1) in series length either way; the cap bounds memory
// and fixes the taQF window, so long-lived deployments should still set it.
func WithBufferLimit(n int) ServerOption {
	return func(o *serverOptions) { o.bufferLimit = n }
}

// WithFeedbackRing sets the per-series provenance-ring length that POST
// /v1/feedback joins ground truth against (default DefaultFeedbackRing;
// 0 disables the feedback endpoint, which then answers 501).
func WithFeedbackRing(n int) ServerOption {
	return func(o *serverOptions) { o.feedbackRing = n }
}

// WithMonitorConfig overrides the runtime calibration monitor's
// configuration (Brier window, reliability bins, drift detection); zero
// fields keep the monitor package defaults.
func WithMonitorConfig(cfg monitor.Config) ServerOption {
	return func(o *serverOptions) { o.monitorCfg = cfg }
}

// WithRecalibration overrides the online-recalibration policy (min feedback
// per leaf, auto-trigger cooldown, Laplace smoothing, prior handling); zero
// fields keep the recalib package defaults. The recalibration machinery is
// always wired — this only tunes it.
func WithRecalibration(cfg recalib.Config) ServerOption {
	return func(o *serverOptions) { o.recalibCfg = cfg }
}

// WithAdmission bounds the hot endpoints (step, steps, feedback):
// maxInflight caps concurrently processed requests per endpoint (0 =
// unlimited, the default), queue bounds how many more may wait for a slot
// before the endpoint sheds with 429. Both caps are per endpoint, so a
// batch stampede cannot starve single-step traffic of admission slots.
func WithAdmission(maxInflight, queue int) ServerOption {
	return func(o *serverOptions) { o.maxInflight, o.admissionQueue = maxInflight, queue }
}

// WithRequestTimeout sets the hot-request deadline (0 = none): a queued
// request that waits this long for admission is shed with 503, and the
// batch endpoint propagates the remaining budget as a context.Context
// through the pool's batch stepper, so a deadline that expires mid-batch
// fails the unstepped items instead of blocking the worker on work the
// client has already abandoned.
func WithRequestTimeout(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.requestTimeout = d }
}

// WithTrace wires a flight recorder through every layer of the server —
// pool steps, batch fan-outs, feedback joins, swaps, admission sheds, and
// (when durability is attached) store activity — and serves its dumps on
// GET /debug/flight and /debug/flight/last-anomaly. Nil disables tracing;
// every record site is nil-safe, so the untraced server pays one pointer
// check per site.
func WithTrace(rec *trace.Recorder) ServerOption {
	return func(o *serverOptions) { o.trace = rec }
}

// WithAutoRecalib arms the automatic drift response: when the calibration-
// drift alarm is active, the feedback path triggers a recalibration swap
// (subject to the policy's cooldown and evidence guards). Off by default —
// the drift alarm then only reports, and recalibration happens through
// POST /v1/recalibrate.
func WithAutoRecalib(on bool) ServerOption {
	return func(o *serverOptions) { o.autoRecalib = on }
}

// NewServer wires a server from calibrated models.
func NewServer(base *uw.Wrapper, taqim *uw.QualityImpactModel, policy simplex.Policy, opts ...ServerOption) (*Server, error) {
	if base == nil || taqim == nil {
		return nil, errors.New("tauserve: base wrapper and taQIM are required")
	}
	o := serverOptions{feedbackRing: DefaultFeedbackRing}
	for _, opt := range opts {
		opt(&o)
	}
	if o.maxSeries < 0 {
		return nil, fmt.Errorf("tauserve: max series %d must be >= 0", o.maxSeries)
	}
	if o.feedbackRing < 0 {
		return nil, fmt.Errorf("tauserve: feedback ring %d must be >= 0", o.feedbackRing)
	}
	if o.maxInflight < 0 || o.admissionQueue < 0 {
		return nil, fmt.Errorf("tauserve: max inflight %d and admission queue %d must be >= 0",
			o.maxInflight, o.admissionQueue)
	}
	if o.requestTimeout < 0 {
		return nil, fmt.Errorf("tauserve: request timeout %v must be >= 0", o.requestTimeout)
	}
	gate, err := simplex.NewMonitor(policy)
	if err != nil {
		return nil, err
	}
	// The flight recorder threads through every layer that records into it:
	// the monitor (drift alarms), the recalibrator (retrain attempts), the
	// pool (steps, batches, feedback, swaps), and the admission gates below.
	o.monitorCfg.Trace = o.trace
	o.recalibCfg.Trace = o.trace
	calib, err := monitor.New(o.monitorCfg)
	if err != nil {
		return nil, err
	}
	poolOpts := []core.PoolOption{core.WithShards(o.shards), core.WithMonitoring(o.feedbackRing)}
	if o.journal {
		poolOpts = append(poolOpts, core.WithStateJournal())
	}
	if o.trace != nil {
		poolOpts = append(poolOpts, core.WithTrace(o.trace))
	}
	pool, err := core.NewWrapperPool(base, taqim, core.Config{BufferLimit: o.bufferLimit},
		o.maxSeries, poolOpts...)
	if err != nil {
		return nil, err
	}
	leafStats, err := monitor.NewLeafStats(taqim.NumRegions(), o.shards)
	if err != nil {
		return nil, err
	}
	recal, err := recalib.New(pool, leafStats, calib, o.recalibCfg)
	if err != nil {
		return nil, err
	}
	s := &Server{
		gate:           gate,
		pool:           pool,
		batchWorkers:   o.batchWorkers,
		calib:          calib,
		latStep:        monitor.NewLatencyHist(),
		latBatch:       monitor.NewLatencyHist(),
		latFeedback:    monitor.NewLatencyHist(),
		leafStats:      leafStats,
		recal:          recal,
		autoRecalib:    o.autoRecalib,
		requestTimeout: o.requestTimeout,
		stages:         monitor.NewStageSet(),
		trace:          o.trace,
	}
	s.adm.step.init("step", o.maxInflight, o.admissionQueue, o.requestTimeout)
	s.adm.batch.init("steps", o.maxInflight, o.admissionQueue, o.requestTimeout)
	s.adm.feedback.init("feedback", o.maxInflight, o.admissionQueue, o.requestTimeout)
	// Sheds reach the flight recorder too (they are exactly the events an
	// anomaly dump needs around an overload): each gate records under its
	// endpoint id.
	s.adm.step.trace, s.adm.step.endpoint = o.trace, trace.EndpointStep
	s.adm.batch.trace, s.adm.batch.endpoint = o.trace, trace.EndpointSteps
	s.adm.feedback.trace, s.adm.feedback.endpoint = o.trace, trace.EndpointFeedback
	s.expo = &monitor.Exposition{
		Monitor: calib,
		Pool:    pool,
		Gate:    gate,
		Swap:    recal,
		Shed:    &s.adm,
		Latencies: []monitor.EndpointLatency{
			{Name: "step", Hist: s.latStep},
			{Name: "steps", Hist: s.latBatch},
			{Name: "feedback", Hist: s.latFeedback},
		},
		Stages: s.stages,
		Go:     monitor.NewGoStats(),
	}
	s.ready.Store(true)
	return s, nil
}

// SetReady flips the /readyz verdict: the shutdown path calls
// SetReady(false) before http.Server.Shutdown so load balancers drain the
// instance before in-flight work is waited on.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Calibration exposes the runtime calibration monitor (tests, the drain
// summary log).
func (s *Server) Calibration() *monitor.Monitor { return s.calib }

// route is one registered endpoint's method+path for the catch-all
// handler's 404/405 distinction: path is the exact match, or — when wild is
// set — a "/"-terminated prefix that must be followed by exactly one more
// non-empty segment (the {id} patterns).
type route struct {
	method string
	path   string
	wild   bool
}

func (rt route) matchesPath(p string) bool {
	if !rt.wild {
		return p == rt.path
	}
	rest, ok := strings.CutPrefix(p, rt.path)
	return ok && rest != "" && !strings.Contains(rest, "/")
}

// Handler returns the HTTP routing table. Every route also lands in a side
// table consulted by the catch-all handler, so unmatched requests get the
// same {"error": ...} JSON shape as every other failure — the stock
// ServeMux writes text/plain 404s and 405s — with a correct Allow header on
// 405.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	var routes []route
	handle := func(method, pattern string, h http.HandlerFunc) {
		mux.HandleFunc(method+" "+pattern, h)
		rt := route{method: method, path: pattern}
		if i := strings.Index(pattern, "{"); i >= 0 {
			rt.path, rt.wild = pattern[:i], true
		}
		routes = append(routes, rt)
	}
	handle("POST", "/v1/series", s.handleNewSeries)
	handle("DELETE", "/v1/series/{id}", s.handleEndSeries)
	handle("POST", "/v1/step", s.handleStep)
	handle("POST", "/v1/steps", s.handleStepBatch)
	handle("POST", "/v1/feedback", s.handleFeedback)
	handle("POST", "/v1/recalibrate", s.handleRecalibrate)
	handle("GET", "/v1/stats", s.handleStats)
	handle("GET", "/v1/model/rules", s.handleRules)
	handle("GET", "/v1/model/leaves", s.handleLeaves)
	handle("GET", "/metrics", s.handleMetrics)
	handle("GET", "/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	handle("GET", "/readyz", s.handleReady)
	if s.faults != nil {
		handle("POST", "/debug/fault", s.handleFault)
	}
	if s.trace != nil {
		handle("GET", "/debug/flight", s.handleFlight)
		handle("GET", "/debug/flight/last-anomaly", s.handleFlightAnomaly)
	}
	mux.HandleFunc("/", s.catchAll(routes))
	return mux
}

// catchAll answers requests no registered route matched: 405 with an Allow
// header when the path exists under other methods, 404 otherwise — both in
// the unified JSON error shape. Allocations here are fine; this is the
// "client is confused" path, not a hot one.
func (s *Server) catchAll(routes []route) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		drainBody(w, r)
		var allow []string
		for _, rt := range routes {
			if rt.matchesPath(r.URL.Path) {
				allow = append(allow, rt.method)
				if rt.method == "GET" {
					allow = append(allow, "HEAD")
				}
			}
		}
		if len(allow) > 0 {
			w.Header().Set("Allow", strings.Join(allow, ", "))
			httpError(w, http.StatusMethodNotAllowed,
				fmt.Errorf("method %s not allowed for %s", r.Method, r.URL.Path))
			return
		}
		httpError(w, http.StatusNotFound, fmt.Errorf("no such endpoint %s", r.URL.Path))
	}
}

// handleReady is the readiness probe: 200 while the server accepts new
// work, 503 once draining has begun. Liveness (/healthz) stays 200 through
// a drain — the process is healthy, just leaving the rotation. Degraded
// mode (durability suspended by the store circuit breaker) answers 200
// with body "degraded": the instance must stay in rotation — serving from
// RAM is the whole point of the breaker — while orchestration and humans
// can still see the state without scraping metrics.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		httpError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	w.WriteHeader(http.StatusOK)
	if s.degraded != nil && s.degraded() {
		fmt.Fprintln(w, "degraded")
		return
	}
	fmt.Fprintln(w, "ok")
}

// newSeriesResponse is the body of POST /v1/series.
type newSeriesResponse struct {
	SeriesID string `json:"series_id"`
}

func (s *Server) handleNewSeries(w http.ResponseWriter, r *http.Request) {
	drainBody(w, r)
	id, err := s.pool.OpenSeries()
	if err != nil {
		if errors.Is(err, core.ErrTrackBudget) {
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusCreated, newSeriesResponse{SeriesID: id}, "series")
}

func (s *Server) handleEndSeries(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.pool.CloseSeries(id); err != nil {
		if errors.Is(err, core.ErrUnknownSeries) || errors.Is(err, core.ErrUnknownTrack) {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown series %q", id))
			return
		}
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// stepRequest is the body of POST /v1/step: one momentaneous DDM outcome
// with the quality factors observed alongside it. It is also one item of
// POST /v1/steps.
type stepRequest struct {
	SeriesID string `json:"series_id"`
	// Outcome is the DDM's class decision for the current frame.
	Outcome int `json:"outcome"`
	// Quality maps quality-factor names (the nine deficit channels) to
	// intensities in [0,1].
	Quality map[string]float64 `json:"quality"`
	// PixelSize is the apparent sign size in pixels.
	PixelSize float64 `json:"pixel_size"`
}

// stepResponse reports the fused outcome, its dependable uncertainty, and
// the selected countermeasure.
type stepResponse struct {
	SeriesID     string  `json:"series_id"`
	FusedOutcome int     `json:"fused_outcome"`
	Uncertainty  float64 `json:"uncertainty"`
	StatelessU   float64 `json:"stateless_uncertainty"`
	// SeriesLen is the buffered window length the taQF were computed over;
	// TotalSteps counts every step since the series opened, including steps
	// evicted once a -buffer-limit ring fills. They differ exactly when
	// eviction has happened.
	SeriesLen  int `json:"series_len"`
	TotalSteps int `json:"total_steps"`
	// ModelVersion is the taQIM revision that produced the uncertainty
	// (increments on every runtime recalibration hot-swap).
	ModelVersion   uint64 `json:"model_version"`
	Countermeasure string `json:"countermeasure"`
	Accepted       bool   `json:"accepted"`
}

// handleStep is a hot endpoint: the request is parsed by the reflection-free
// codec straight into pooled scratch and the response is rendered into a
// pooled buffer flushed with one Write (see codec.go). The stdlib encoder
// never runs on the success path.
func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.latStep.Observe(time.Since(start)) }()
	if !s.adm.step.admit(w) {
		return
	}
	defer s.adm.step.release()
	// Deadline-aware shedding: a request admitted with its whole budget
	// already spent in the queue is refused, not half-served. A single step
	// is sub-microsecond, so no context needs to flow further — the check at
	// admission is the deadline.
	if s.requestTimeout > 0 && time.Since(start) >= s.requestTimeout {
		s.adm.step.noteDeadline()
		shedResponse(w, http.StatusServiceUnavailable, errDeadlineBody)
		return
	}
	sc := getScratch()
	defer sc.release()
	var err error
	sc.body, err = readBody(sc.body, http.MaxBytesReader(w, r.Body, maxStepBodyBytes))
	if err != nil {
		httpError(w, decodeStatus(err), fmt.Errorf("reading request: %w", err))
		return
	}
	sc.dec.reset(sc.body)
	var step wireStep
	if err := sc.dec.decodeStepRequest(&step); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if step.itemErr != nil {
		httpError(w, http.StatusBadRequest, step.itemErr)
		return
	}
	decoded := time.Now()
	s.stages.Decode.Observe(decoded.Sub(start))
	res, err := s.pool.StepSeries(step.seriesID, step.outcome, step.qf)
	if err != nil {
		if errors.Is(err, core.ErrUnknownSeries) || errors.Is(err, core.ErrUnknownTrack) {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown series %q", step.seriesID))
			return
		}
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	resp, err := s.gateResult(step.seriesID, res)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	stepped := time.Now()
	s.stages.Step.Observe(stepped.Sub(decoded))
	sc.out, err = appendStepResponse(sc.out[:0], &resp)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeRaw(w, http.StatusOK, sc.out, "step")
	s.stages.Encode.Observe(time.Since(stepped))
}

// gate runs one pool result through the simplex monitor and shapes the
// response body shared by the single-step and batch endpoints.
func (s *Server) gateResult(seriesID string, res core.Result) (stepResponse, error) {
	decision, err := s.gate.Gate(res.Fused, res.Uncertainty)
	if err != nil {
		return stepResponse{}, err
	}
	return stepResponse{
		SeriesID:       seriesID,
		FusedOutcome:   res.Fused,
		Uncertainty:    res.Uncertainty,
		StatelessU:     res.Stateless.Uncertainty,
		SeriesLen:      res.SeriesLen,
		TotalSteps:     res.TotalSteps,
		ModelVersion:   res.ModelVersion,
		Countermeasure: decision.Level.Name,
		Accepted:       decision.Accepted,
	}, nil
}

// batchStepRequest is the body of POST /v1/steps: a slice of per-series
// steps processed in one round trip. Items are independent; one bad item
// fails with its own status without failing the batch.
type batchStepRequest struct {
	Steps []stepRequest `json:"steps"`
}

// batchItemResponse carries one item's outcome: Status mirrors the code the
// single-step endpoint would have answered (200, 400, 404, 500), and exactly
// one of Step / Error is set.
type batchItemResponse struct {
	Status int           `json:"status"`
	Step   *stepResponse `json:"step,omitempty"`
	Error  string        `json:"error,omitempty"`
}

// batchStepResponse is the body of POST /v1/steps: per-item results in
// request order plus summary counters.
type batchStepResponse struct {
	Results []batchItemResponse `json:"results"`
	OK      int                 `json:"ok"`
	Failed  int                 `json:"failed"`
}

// handleStepBatch is the hot batch endpoint: body, decoded items, pool
// batch inputs/results, response structs, and the response bytes all live in
// one pooled scratch, so a steady-state batch request allocates only the
// per-item quality vectors the wrappers retain (slab-chunked, one
// allocation per 256 items) plus transient error strings on failed items.
func (s *Server) handleStepBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.latBatch.Observe(time.Since(start)) }()
	if !s.adm.batch.admit(w) {
		return
	}
	defer s.adm.batch.release()
	if s.requestTimeout > 0 && time.Since(start) >= s.requestTimeout {
		s.adm.batch.noteDeadline()
		shedResponse(w, http.StatusServiceUnavailable, errDeadlineBody)
		return
	}
	sc := getScratch()
	defer sc.release()
	var err error
	sc.body, err = readBody(sc.body, http.MaxBytesReader(w, r.Body, maxBatchBodyBytes))
	if err != nil {
		httpError(w, decodeStatus(err), fmt.Errorf("reading request: %w", err))
		return
	}
	sc.dec.reset(sc.body)
	sc.steps, err = sc.dec.decodeBatchRequest(sc.steps)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(sc.steps) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	decoded := time.Now()
	s.stages.Decode.Observe(decoded.Sub(start))
	// The decoder already fails past-the-cap arrays mid-parse
	// (errBatchTooLarge), so this is an unreachable backstop kept for the
	// day the decode path changes.
	if len(sc.steps) > maxBatchItems {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d exceeds limit %d", len(sc.steps), maxBatchItems))
		return
	}

	n := len(sc.steps)
	sc.resp.Results = xslice.Grow(sc.resp.Results, n)
	sc.resp.OK, sc.resp.Failed = 0, 0
	// stepBodies is sized up front: Step pointers into it must stay valid,
	// so it may not grow once the first address is taken.
	sc.stepBodies = xslice.Grow(sc.stepBodies, n)
	sc.items = sc.items[:0]
	sc.back = sc.back[:0]
	for i := range sc.steps {
		st := &sc.steps[i]
		if st.itemErr != nil {
			sc.resp.Results[i] = batchItemResponse{Status: http.StatusBadRequest, Error: st.itemErr.Error()}
			continue
		}
		sc.items = append(sc.items, core.SeriesStepItem{
			SeriesID: st.seriesID,
			Outcome:  st.outcome,
			Quality:  st.qf,
		})
		sc.back = append(sc.back, int32(i))
	}

	// The remaining -request-timeout budget rides a context through the
	// batch stepper: items not yet stepped when it expires fail per-item
	// with 503 below instead of holding the batch worker hostage. The
	// context pair allocates, but only on the deadline-armed configuration —
	// the default path stays on the background context for free.
	ctx := r.Context()
	if s.requestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, start.Add(s.requestTimeout))
		defer cancel()
	}
	sc.results = s.pool.StepBatchSeriesIntoCtx(ctx, sc.items, s.batchWorkers, sc.results)
	for j := range sc.results {
		br := &sc.results[j]
		i := sc.back[j]
		switch {
		case br.Err == nil:
			stepResp, err := s.gateResult(sc.steps[i].seriesID, br.Result)
			if err != nil {
				sc.resp.Results[i] = batchItemResponse{Status: http.StatusInternalServerError, Error: err.Error()}
				continue
			}
			sc.stepBodies[i] = stepResp
			sc.resp.Results[i] = batchItemResponse{Status: http.StatusOK, Step: &sc.stepBodies[i]}
		case errors.Is(br.Err, core.ErrUnknownSeries), errors.Is(br.Err, core.ErrUnknownTrack):
			sc.resp.Results[i] = batchItemResponse{
				Status: http.StatusNotFound,
				Error:  fmt.Sprintf("unknown series %q", sc.steps[i].seriesID),
			}
		case errors.Is(br.Err, context.DeadlineExceeded), errors.Is(br.Err, context.Canceled):
			// The request deadline expired (or the client vanished)
			// mid-batch: the item was shed, not failed — 503 tells the
			// client a retry with a smaller batch or later can succeed.
			sc.resp.Results[i] = batchItemResponse{Status: http.StatusServiceUnavailable, Error: br.Err.Error()}
		default:
			sc.resp.Results[i] = batchItemResponse{Status: http.StatusInternalServerError, Error: br.Err.Error()}
		}
	}
	for i := range sc.resp.Results {
		if sc.resp.Results[i].Status == http.StatusOK {
			sc.resp.OK++
		} else {
			sc.resp.Failed++
		}
	}
	stepped := time.Now()
	s.stages.Step.Observe(stepped.Sub(decoded))
	sc.out, err = appendBatchStepResponse(sc.out[:0], &sc.resp)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeRaw(w, http.StatusOK, sc.out, "steps")
	s.stages.Encode.Observe(time.Since(stepped))
}

// drainBody consumes (and discards) the request body on endpoints whose
// contract takes none. Handlers that return without reading the body force
// net/http to either drain it (small bodies) or tear the connection down
// (bodies past its internal post-handler limit, 256 KiB), so a keep-alive
// client that POSTs a non-empty body would lose its connection — and every
// pipelined request behind it — to a handler that simply didn't look. The
// drain is size-capped like every other endpoint; a body past the cap still
// costs the connection, by MaxBytesReader design, but reads as a deliberate
// limit instead of an accident.
func drainBody(w http.ResponseWriter, r *http.Request) {
	if r.Body == nil {
		return
	}
	io.Copy(io.Discard, http.MaxBytesReader(w, r.Body, maxStepBodyBytes)) //nolint:errcheck // best-effort drain
}

// decodeStatus distinguishes "your JSON is broken" (400) from "your body
// blew the size cap" (413) so batch clients know the remedy is splitting,
// not fixing, the request.
func decodeStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// qualityIndex maps each deficit-channel name to its vector slot; the
// channel set is fixed at compile time, so build the index once instead of
// per step (the batch endpoint calls qualityFromMap up to 4096 times per
// request).
var qualityIndex = func() map[string]int {
	names := augment.Names()
	index := make(map[string]int, len(names))
	for i, n := range names {
		index[n] = i
	}
	return index
}()

// qualityFromMap assembles the wrapper's quality-factor vector from named
// channels; missing channels default to 0 (no deficit), unknown names fail.
func qualityFromMap(m map[string]float64, pixelSize float64) ([]float64, error) {
	numNames := len(qualityIndex)
	qf := make([]float64, numNames+1)
	for name, v := range m {
		i, ok := qualityIndex[name]
		if !ok {
			return nil, fmt.Errorf("unknown quality factor %q", name)
		}
		// The negated form also rejects NaN, which satisfies neither bound.
		if !(v >= 0 && v <= 1) {
			return nil, fmt.Errorf("quality factor %q = %g outside [0,1]", name, v)
		}
		qf[i] = v
	}
	// Negated so NaN (which satisfies no comparison) is rejected too.
	if !(pixelSize > 0) {
		return nil, fmt.Errorf("pixel_size must be positive, got %g", pixelSize)
	}
	qf[numNames] = pixelSize
	return qf, nil
}

// statsResponse is the body of GET /v1/stats.
type statsResponse struct {
	ActiveSeries int            `json:"active_series"`
	PoolShards   int            `json:"pool_shards"`
	Gated        int            `json:"gated_total"`
	PerLevel     map[string]int `json:"per_countermeasure"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.gate.Snapshot()
	writeJSON(w, http.StatusOK, statsResponse{
		ActiveSeries: s.pool.Active(),
		PoolShards:   s.pool.NumShards(),
		Gated:        snap.Total,
		PerLevel:     snap.PerLevel,
	}, "stats")
}

// handleRules renders the rules of the taQIM revision currently serving —
// after a recalibration hot-swap the transparency surface must describe the
// refreshed bounds, not the construction-time model.
func (s *Server) handleRules(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "=== timeseries-aware quality impact model ===")
	fmt.Fprint(w, s.pool.CurrentTAQIM().Rules())
}

// handleLeaves exposes the machine-readable audit report: every calibrated
// region of the serving revision with its bound, calibration evidence, and
// routing conditions.
func (s *Server) handleLeaves(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.pool.CurrentTAQIM().LeafReport(), "leaves")
}

type errorResponse struct {
	Error string `json:"error"`
}

// httpError writes the unified {"error": "..."} shape every 4xx/5xx
// carries, rendered by the reflection-free codec into pooled scratch so
// even an error storm does not allocate response bodies. All error bodies
// share one write-failure limiter key: a client that vanishes mid-error is
// one story regardless of which handler it was talking to.
func httpError(w http.ResponseWriter, code int, err error) {
	sc := getScratch()
	sc.out = appendErrorResponse(sc.out[:0], err.Error())
	writeRaw(w, code, sc.out, "error")
	sc.release()
}

// logf is the server's error logger, a package variable so tests can
// capture what the write paths report. It keeps the printf signature the
// historical call sites (and their tests) were written against; the xlog
// backing renders each line as an error-level component=server record.
var logf = xlog.New("server").Printf

// writeFailures rate-limits the response-write-failure log path to one
// line per second per endpoint: clients vanish in herds (a draining load
// balancer, a killed batch driver), and the log should record the herd,
// not echo it.
var writeFailures = newLogLimiter(time.Now)

// logWriteFailure reports one failed response write through the limiter,
// folding the count of suppressed same-endpoint failures into the next
// line that passes.
func logWriteFailure(endpoint string, code int, err error) {
	ok, suppressed := writeFailures.allow(endpoint)
	if !ok {
		return
	}
	if suppressed > 0 {
		logf("tauserve: writing %d response (%s): %v (%d earlier write failures on this endpoint suppressed)",
			code, endpoint, err, suppressed)
		return
	}
	logf("tauserve: writing %d response (%s): %v", code, endpoint, err)
}

// writeJSON renders v with the stdlib encoder (cold endpoints only). The
// header is already written when encoding or writing fails, so the error
// cannot reach the client anymore — but it must not vanish either: every
// failure is logged (rate-limited per endpoint) with the status it was
// meant to carry.
func writeJSON(w http.ResponseWriter, code int, v any, endpoint string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		logWriteFailure(endpoint, code, err)
	}
}

// writeRaw flushes a pre-rendered hot-path body in a single Write with an
// exact Content-Length. Write failures (client gone, connection reset) are
// logged like writeJSON's.
func writeRaw(w http.ResponseWriter, code int, body []byte, endpoint string) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(code)
	if _, err := w.Write(body); err != nil {
		logWriteFailure(endpoint, code, err)
	}
}
