package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/iese-repro/tauw/internal/simplex"
)

// feedbackWire is the client-side shape of POST /v1/feedback.
type feedbackWire struct {
	SeriesID string `json:"series_id"`
	Step     int    `json:"step"`
	Truth    int    `json:"truth"`
}

// monitoredServer builds a server with explicit monitoring options plus its
// httptest listener.
func monitoredServer(t *testing.T, opts ...ServerOption) (*Server, *httptest.Server) {
	t.Helper()
	testServer(t) // builds the shared study fixture
	srv, err := NewServer(studyVal.Base, studyVal.TAQIM, simplex.DefaultTSRPolicy(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func stepOnce(t *testing.T, ts *httptest.Server, id string, outcome int) stepResponse {
	t.Helper()
	resp := postJSON(t, ts.URL+"/v1/step", stepRequest{
		SeriesID: id, Outcome: outcome, PixelSize: 180,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("step = %d", resp.StatusCode)
	}
	return decode[stepResponse](t, resp)
}

func TestFeedbackJoin(t *testing.T) {
	srv, ts := monitoredServer(t, WithFeedbackRing(4))
	id := newSeries(t, ts)
	var steps []stepResponse
	for i := 0; i < 6; i++ {
		steps = append(steps, stepOnce(t, ts, id, 14))
	}

	// Happy path: judge step 6 as correct (truth == fused).
	resp := postJSON(t, ts.URL+"/v1/feedback", feedbackWire{SeriesID: id, Step: 6, Truth: steps[5].FusedOutcome})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feedback = %d", resp.StatusCode)
	}
	fb := decode[feedbackResponse](t, resp)
	if !fb.Correct || fb.Step != 6 || fb.FusedOutcome != steps[5].FusedOutcome {
		t.Errorf("feedback join = %+v", fb)
	}
	if fb.Uncertainty != steps[5].Uncertainty {
		t.Errorf("joined uncertainty %g, served %g", fb.Uncertainty, steps[5].Uncertainty)
	}

	// Judge step 5 as wrong (a truth the fused outcome did not match).
	resp = postJSON(t, ts.URL+"/v1/feedback", feedbackWire{SeriesID: id, Step: 5, Truth: steps[4].FusedOutcome + 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feedback = %d", resp.StatusCode)
	}
	if fb := decode[feedbackResponse](t, resp); fb.Correct {
		t.Error("wrong outcome reported as correct")
	}

	// Duplicate: step 6 was already judged.
	resp = postJSON(t, ts.URL+"/v1/feedback", feedbackWire{SeriesID: id, Step: 6, Truth: 14})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate feedback = %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	// Late: steps 1 and 2 fell out of the 4-slot ring; future steps were
	// never served.
	for _, step := range []int{1, 2, 99} {
		resp := postJSON(t, ts.URL+"/v1/feedback", feedbackWire{SeriesID: id, Step: step, Truth: 14})
		if resp.StatusCode != http.StatusGone {
			t.Errorf("feedback for step %d = %d, want 410", step, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Unknown series.
	resp = postJSON(t, ts.URL+"/v1/feedback", feedbackWire{SeriesID: "nope", Step: 1, Truth: 14})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown series feedback = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// Closed series: the join must be a not-found, not a stale hit.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/series/"+id, nil)
	if dresp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		dresp.Body.Close()
	}
	resp = postJSON(t, ts.URL+"/v1/feedback", feedbackWire{SeriesID: id, Step: 4, Truth: 14})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("closed series feedback = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// The monitor saw exactly the two joined feedbacks, one of them wrong.
	snap := srv.Calibration().Snapshot()
	if snap.Feedbacks != 2 || snap.Correct != 1 {
		t.Errorf("monitor snapshot = %d feedbacks / %d correct, want 2/1", snap.Feedbacks, snap.Correct)
	}
}

func TestFeedbackValidation(t *testing.T) {
	_, ts := monitoredServer(t)
	id := newSeries(t, ts)
	stepOnce(t, ts, id, 14)

	for name, body := range map[string]string{
		"missing step":   fmt.Sprintf(`{"series_id":%q,"truth":14}`, id),
		"missing truth":  fmt.Sprintf(`{"series_id":%q,"step":1}`, id),
		"malformed":      `{"series_id":`,
		"null top-level": `null`,
		"trailing junk":  fmt.Sprintf(`{"series_id":%q,"step":1,"truth":14} x`, id),
	} {
		resp, err := http.Post(ts.URL+"/v1/feedback", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", name, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Unknown fields and fold-cased keys follow json.Unmarshal semantics.
	resp, err := http.Post(ts.URL+"/v1/feedback", "application/json",
		strings.NewReader(fmt.Sprintf(`{"SERIES_ID":%q,"Step":1,"truth":14,"extra":{"a":[1,2]}}`, id)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("fold-cased feedback = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestFeedbackDisabled(t *testing.T) {
	_, ts := monitoredServer(t, WithFeedbackRing(0))
	id := newSeries(t, ts)
	stepOnce(t, ts, id, 14)
	resp := postJSON(t, ts.URL+"/v1/feedback", feedbackWire{SeriesID: id, Step: 1, Truth: 14})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("disabled feedback = %d, want 501", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestFeedbackEncodingMatchesStdlib pins the hand-rolled response encoder
// byte-for-byte against encoding/json for the feedback body.
func TestFeedbackEncodingMatchesStdlib(t *testing.T) {
	r := feedbackResponse{
		SeriesID: "s\"42 ", Step: 17, Correct: true,
		FusedOutcome: -3, Uncertainty: 0.00721, TAQIMLeaf: 12, DriftAlarm: false,
	}
	got, err := appendFeedbackResponse(nil, &r)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("encoder mismatch:\n got %s\nwant %s", got, want)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, ts := monitoredServer(t, WithFeedbackRing(16))
	id := newSeries(t, ts)
	var last stepResponse
	for i := 0; i < 5; i++ {
		last = stepOnce(t, ts, id, 14)
	}
	resp := postJSON(t, ts.URL+"/v1/feedback", feedbackWire{SeriesID: id, Step: last.TotalSteps, Truth: 14})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feedback = %d", resp.StatusCode)
	}
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type = %q", ct)
	}
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"tauw_steps_total 5\n",
		"tauw_feedback_total 1\n",
		"tauw_feedback_correct_total 1\n",
		"tauw_active_series 1\n",
		`tauw_steps_outcome_total{outcome="14"} 5`,
		"tauw_brier_windowed ",
		"tauw_ece ",
		"tauw_drift_alarms_total 0\n",
		`tauw_gate_total{countermeasure=`,
		`tauw_request_duration_seconds_count{endpoint="step"} 5`,
		`tauw_request_duration_seconds_count{endpoint="feedback"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The windowed Brier in the exposition must equal the monitor's own.
	snap := srv.Calibration().Snapshot()
	line := fmt.Sprintf("tauw_brier_windowed %s\n", strconv.FormatFloat(snap.WindowedBrier, 'g', -1, 64))
	if !strings.Contains(out, line) {
		t.Errorf("metrics missing %q\n%s", line, out)
	}
}

func TestReadyzFlipsDuringDrain(t *testing.T) {
	srv, ts := monitoredServer(t)
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Errorf("readyz = %d, want 200", got)
	}
	srv.SetReady(false)
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d, want 503", got)
	}
	// Liveness is unaffected: the process is healthy, just out of rotation.
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("healthz during drain = %d, want 200", got)
	}
	srv.SetReady(true)
	if got := get("/readyz"); got != http.StatusOK {
		t.Errorf("re-ready readyz = %d, want 200", got)
	}
}

// TestGracefulShutdownDrainsInFlight drives the real drain sequence: a
// request is held in flight (its body kept open), shutdown is requested,
// and the request must still complete before the listener closes.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	testServer(t)
	srv, err := NewServer(studyVal.Base, studyVal.TAQIM, simplex.DefaultTSRPolicy())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpServer := &http.Server{Handler: srv.Handler()}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- serveUntilShutdown(ctx, nil, httpServer, srv, nil, 100*time.Millisecond, 5*time.Second,
			func() error { return httpServer.Serve(ln) })
	}()
	base := "http://" + ln.Addr().String()

	// Open a series, then hold a step request in flight with a pipe body.
	resp, err := http.Post(base+"/v1/series", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	var created newSeriesResponse
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	pr, pw := io.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	var stepStatus int
	go func() {
		defer wg.Done()
		resp, err := http.Post(base+"/v1/step", "application/json", pr)
		if err != nil {
			t.Error(err)
			return
		}
		stepStatus = resp.StatusCode
		resp.Body.Close()
	}()
	body := fmt.Sprintf(`{"series_id":%q,"outcome":14,"pixel_size":160}`, created.SeriesID)
	if _, err := pw.Write([]byte(body[:10])); err != nil {
		t.Fatal(err)
	}
	// Give the server time to accept the connection and enter the handler
	// (it blocks reading the rest of the body), so the request is genuinely
	// in flight when shutdown begins.
	time.Sleep(150 * time.Millisecond)
	cancel()
	time.Sleep(30 * time.Millisecond)
	// Inside the drain-grace window the listener still accepts new
	// connections and /readyz already answers 503 — the observable window
	// a load balancer's probe needs to take the instance out of rotation.
	if resp, err := http.Get(base + "/readyz"); err != nil {
		t.Errorf("readyz during drain grace: %v", err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("readyz during drain grace = %d, want 503", resp.StatusCode)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if _, err := pw.Write([]byte(body[10:])); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	wg.Wait()
	if stepStatus != http.StatusOK {
		t.Errorf("in-flight step during drain = %d, want 200", stepStatus)
	}
	if err := <-done; err != nil {
		t.Errorf("serveUntilShutdown = %v", err)
	}
	// Readiness flipped and the listener is closed for new connections.
	if srv.ready.Load() {
		t.Error("server still ready after drain")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after drain")
	}
}

// TestConcurrentFeedbackAndStepsHTTP races step and feedback traffic on the
// same series through the full HTTP stack — run under -race it pins the
// ring/monitor synchronisation end to end.
func TestConcurrentFeedbackAndStepsHTTP(t *testing.T) {
	_, ts := monitoredServer(t, WithFeedbackRing(64))
	const series = 4
	ids := make([]string, series)
	for i := range ids {
		ids[i] = newSeries(t, ts)
	}
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(2)
		go func(id string) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				r := postJSONNoT(ts.URL+"/v1/step", stepRequest{SeriesID: id, Outcome: 14, PixelSize: 170})
				if r == nil || r.StatusCode != http.StatusOK {
					t.Errorf("step failed")
					return
				}
				r.Body.Close()
			}
		}(id)
		go func(id string) {
			defer wg.Done()
			for step := 1; step <= 40; step++ {
				r := postJSONNoT(ts.URL+"/v1/feedback", feedbackWire{SeriesID: id, Step: step, Truth: 14})
				if r == nil {
					t.Errorf("feedback transport failed")
					return
				}
				switch r.StatusCode {
				case http.StatusOK, http.StatusGone, http.StatusConflict:
					// All legal interleavings.
				default:
					t.Errorf("feedback = %d", r.StatusCode)
					r.Body.Close()
					return
				}
				r.Body.Close()
			}
		}(id)
	}
	wg.Wait()
}
