// loglimit.go rate-limits the response-write-failure log path. A write
// failure means the client vanished mid-response — and clients vanish in
// herds (a load balancer drains, a batch driver is killed), so one dead
// peer can turn into thousands of identical log lines in a second. The
// limiter lets one line per second per endpoint through and counts the
// rest, so the next allowed line reports how many it swallowed: the
// operator keeps the signal (which endpoint, what error, how often)
// without the log becoming the incident.
package main

import (
	"sync"
	"time"
)

// logLimiter caps a repetitive log path at one line per second per key.
// Keys are endpoint names — low cardinality by construction — so the map
// stays a handful of entries for the life of the process.
type logLimiter struct {
	// now injects the clock (tests); the production limiter uses time.Now.
	now func() time.Time

	mu sync.Mutex
	m  map[string]*logLimitEntry
}

type logLimitEntry struct {
	last       time.Time
	suppressed uint64
}

func newLogLimiter(now func() time.Time) *logLimiter {
	return &logLimiter{now: now, m: make(map[string]*logLimitEntry)}
}

// allow reports whether a line keyed by key may be emitted now and, when it
// may, how many lines were suppressed since the last allowed one — the
// caller folds that count into the line it emits. The first line for a key
// always passes.
func (l *logLimiter) allow(key string) (ok bool, suppressed uint64) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.m[key]
	if e == nil {
		e = &logLimitEntry{}
		l.m[key] = e
	}
	if !e.last.IsZero() && now.Sub(e.last) < time.Second {
		e.suppressed++
		return false, 0
	}
	suppressed = e.suppressed
	e.suppressed = 0
	e.last = now
	return true, suppressed
}
