// fault.go is the chaos harness's control surface: when the process is
// started with -fault-inject (and a -state-dir), the durable store is
// wrapped in a store.FaultStore and POST /debug/fault reprograms its fault
// plan at runtime — fail the next N operations, tear appends, inject
// latency, heal. The endpoint only exists when the flag armed it, is
// documented as a testing facility, and uses the stdlib JSON codec: nothing
// here is a hot path, and nothing here should ever run in production.
package main

import (
	//tauwcheck:ignore codecpure debug-only fault-plan endpoint, not a serving codec
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"github.com/iese-repro/tauw/internal/store"
)

// faultRequest scripts one reconfiguration of the fault plan. Clear runs
// first (so one request can atomically heal-then-rearm), then the schedule
// fields apply to the selected operation(s).
type faultRequest struct {
	// Op selects the store operation: "append", "checkpoint", "sync", or
	// "all" (also the default for an empty string).
	Op string `json:"op"`
	// After successful calls pass through before Count calls fail
	// (count < 0 = fail until cleared; count == 0 schedules nothing).
	After int `json:"after"`
	Count int `json:"count"`
	// Torn makes scheduled Append failures torn writes (tallied in
	// torn_bytes) instead of clean errors.
	Torn bool `json:"torn"`
	// LatencyMS injects a fixed delay before every selected operation
	// (0 leaves latency unchanged unless Clear is set).
	LatencyMS int `json:"latency_ms"`
	// Clear drops all schedules and latencies before applying the rest.
	Clear bool `json:"clear"`
}

// faultResponse echoes the store's fault counters after the change.
type faultResponse struct {
	Ops       map[string]uint64 `json:"ops"`
	Faults    map[string]uint64 `json:"faults"`
	TornBytes uint64            `json:"torn_bytes"`
}

func parseFaultOps(op string) ([]store.Op, error) {
	switch op {
	case "append":
		return []store.Op{store.OpAppend}, nil
	case "checkpoint":
		return []store.Op{store.OpCheckpoint}, nil
	case "sync":
		return []store.Op{store.OpSync}, nil
	case "", "all":
		return []store.Op{store.OpAppend, store.OpCheckpoint, store.OpSync}, nil
	}
	return nil, fmt.Errorf("unknown op %q (want append, checkpoint, sync, or all)", op)
}

// handleFault reprograms the fault plan (POST /debug/fault, only routed
// when -fault-inject armed the wrapper).
func (s *Server) handleFault(w http.ResponseWriter, r *http.Request) {
	var req faultRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxStepBodyBytes)).Decode(&req); err != nil {
		httpError(w, decodeStatus(err), fmt.Errorf("decoding request: %w", err))
		return
	}
	ops, err := parseFaultOps(req.Op)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if req.Clear {
		s.faults.Clear()
	}
	for _, op := range ops {
		if req.Count != 0 {
			if req.Torn && op == store.OpAppend {
				s.faults.TornAppend(req.After, req.Count)
			} else {
				s.faults.FailOps(op, req.After, req.Count, nil)
			}
		}
		if req.LatencyMS > 0 {
			s.faults.SetLatency(op, time.Duration(req.LatencyMS)*time.Millisecond)
		}
	}
	st := s.faults.Stats()
	resp := faultResponse{
		Ops:       map[string]uint64{},
		Faults:    map[string]uint64{},
		TornBytes: st.TornBytes,
	}
	for op := store.Op(0); op < store.NumOps(); op++ {
		resp.Ops[op.String()] = st.Ops[op]
		resp.Faults[op.String()] = st.Faults[op]
	}
	writeJSON(w, http.StatusOK, resp, "fault")
}
