package main

import (
	"testing"
	"time"
)

// TestLogLimiter drives one limiter through a scripted clock: the first
// line per key passes, repeats inside the same second are swallowed and
// counted, the count is handed to the next allowed line exactly once, and
// keys are independent.
func TestLogLimiter(t *testing.T) {
	base := time.Unix(1000, 0)
	steps := []struct {
		name           string
		key            string
		at             time.Duration // offset from base
		wantOK         bool
		wantSuppressed uint64
	}{
		{"first line passes", "step", 0, true, 0},
		{"repeat in-window suppressed", "step", 100 * time.Millisecond, false, 0},
		{"still suppressed at 999ms", "step", 999 * time.Millisecond, false, 0},
		{"other key unaffected", "feedback", 999 * time.Millisecond, true, 0},
		{"window over: passes with count", "step", time.Second, true, 2},
		{"count was consumed", "step", 2100 * time.Millisecond, true, 0},
		{"suppress one more", "step", 2200 * time.Millisecond, false, 0},
		{"long gap still reports it", "step", time.Hour, true, 1},
	}
	var now time.Time
	l := newLogLimiter(func() time.Time { return now })
	for _, st := range steps {
		now = base.Add(st.at)
		ok, suppressed := l.allow(st.key)
		if ok != st.wantOK || suppressed != st.wantSuppressed {
			t.Fatalf("%s: allow(%q) = (%v, %d), want (%v, %d)",
				st.name, st.key, ok, suppressed, st.wantOK, st.wantSuppressed)
		}
	}
}
