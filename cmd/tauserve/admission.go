// admission.go is the overload-protection layer of the hot endpoints
// (step, steps, feedback): a per-endpoint concurrency cap with a bounded
// admission queue and deadline-aware shedding. The accept path is
// allocation-free — admission is one non-blocking channel send, release one
// receive — and only a request that finds the endpoint saturated pays for a
// queue slot (an atomic counter) and a pooled timer. Shed responses carry
// Retry-After and the same {"error": ...} JSON shape as every other 4xx/5xx,
// pre-rendered so shedding a request under overload costs no allocation
// either: the cheaper rejection is, the better it protects the work that was
// admitted.
package main

import (
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/iese-repro/tauw/internal/trace"
)

// Shed response bodies, pre-rendered: the overload path must not allocate.
var (
	errQueueFullBody = []byte(`{"error":"server overloaded: admission queue full"}`)
	errDeadlineBody  = []byte(`{"error":"request deadline exceeded in admission queue"}`)
)

// limiter is one endpoint's admission gate. A nil tokens channel disables
// the gate entirely (the default): admit/release reduce to one nil check,
// so deployments that never set -max-inflight pay nothing.
type limiter struct {
	name string
	// tokens holds one slot per admitted in-flight request; admission is a
	// channel send, release a receive, so saturation and FIFO-ish wakeup
	// come from the runtime instead of hand-rolled queueing.
	tokens chan struct{}
	// queued counts requests waiting for a token; maxQueue bounds them. The
	// bound is what turns sustained overload into fast 429s instead of an
	// unbounded pile of goroutines all destined to time out.
	queued   atomic.Int64
	maxQueue int64
	// timeout is the admission-wait budget (0 = wait indefinitely; the
	// queue cap alone bounds exposure then).
	timeout time.Duration

	shedQueueFull atomic.Uint64
	shedDeadline  atomic.Uint64

	// trace records each shed into the flight recorder under the gate's
	// endpoint id (trace.EndpointStep/Steps/Feedback); nil disables it.
	trace    *trace.Recorder
	endpoint uint64
}

// admission is the server's limiter set, one per hot endpoint. It
// implements monitor.ShedSource for the tauw_shed_total exposition.
type admission struct {
	step, batch, feedback limiter
}

// init configures one endpoint's gate in place (the limiter embeds
// atomics, so it cannot be copied): maxInflight 0 disables it.
func (l *limiter) init(name string, maxInflight, maxQueue int, timeout time.Duration) {
	l.name = name
	l.maxQueue = int64(maxQueue)
	l.timeout = timeout
	if maxInflight > 0 {
		l.tokens = make(chan struct{}, maxInflight)
	}
}

// EachShed implements monitor.ShedSource: every endpoint×reason series is
// visited (zeros included, so the counters exist before the first shed).
func (a *admission) EachShed(visit func(endpoint, reason string, count uint64)) {
	for _, l := range [...]*limiter{&a.step, &a.batch, &a.feedback} {
		visit(l.name, "queue_full", l.shedQueueFull.Load())
		visit(l.name, "deadline", l.shedDeadline.Load())
	}
}

// timerPool recycles the queue-wait timers so a saturated endpoint does not
// allocate one timer per queued request.
var timerPool sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if t, ok := timerPool.Get().(*time.Timer); ok {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func putTimer(t *time.Timer) {
	if !t.Stop() {
		// Already fired; drain the channel if the value wasn't consumed so
		// the next Reset starts clean.
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

// admit gates one request. It returns true when the request holds a token
// (pair with release); on false it has already written the shed response —
// 429 when the bounded queue is full (the client should back off and
// retry), 503 when the request spent its whole -request-timeout waiting for
// a token (the server is saturated beyond the queue's smoothing ability).
// Both carry Retry-After per RFC 7231 §7.1.3.
func (l *limiter) admit(w http.ResponseWriter) bool {
	if l.tokens == nil {
		return true
	}
	select {
	case l.tokens <- struct{}{}:
		return true
	default:
	}
	if l.queued.Add(1) > l.maxQueue {
		l.queued.Add(-1)
		l.noteQueueFull()
		shedResponse(w, http.StatusTooManyRequests, errQueueFullBody)
		return false
	}
	if l.timeout <= 0 {
		l.tokens <- struct{}{}
		l.queued.Add(-1)
		return true
	}
	t := getTimer(l.timeout)
	select {
	case l.tokens <- struct{}{}:
		l.queued.Add(-1)
		putTimer(t)
		return true
	case <-t.C:
		l.queued.Add(-1)
		l.noteDeadline()
		putTimer(t)
		shedResponse(w, http.StatusServiceUnavailable, errDeadlineBody)
		return false
	}
}

// noteQueueFull and noteDeadline tally one shed and mirror it into the
// flight recorder — sheds are exactly the context an overload anomaly dump
// needs, and enough of them inside one second freeze a "shed_rate" anomaly
// on their own (trace.Config.ShedPerSec).
func (l *limiter) noteQueueFull() {
	l.shedQueueFull.Add(1)
	l.trace.Record(trace.KindShed, trace.StatusQueueFull, 0, 0, l.endpoint)
}

func (l *limiter) noteDeadline() {
	l.shedDeadline.Add(1)
	l.trace.Record(trace.KindShed, trace.StatusDeadline, 0, 0, l.endpoint)
}

// release returns the admission token. Must be called exactly once after a
// true admit.
func (l *limiter) release() {
	if l.tokens == nil {
		return
	}
	<-l.tokens
}

// shedResponse writes a pre-rendered overload rejection: JSON error shape,
// exact Content-Length, and a Retry-After the client can obey. One second
// is deliberate — shedding exists to smooth bursts, and a burst that is
// still there a second later deserves to be shed again.
func shedResponse(w http.ResponseWriter, code int, body []byte) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Retry-After", "1")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(code)
	if _, err := w.Write(body); err != nil {
		logWriteFailure("shed", code, err)
	}
}
