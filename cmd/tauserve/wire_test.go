// wire_test.go pins the binary transport to the JSON endpoints: the
// differential test drives the same traffic through both and requires
// byte-identical results and monitor state, and the error-status tests
// require the same status codes for the same failure conditions. The drain
// test covers the shutdown path ShutdownWire shares with the HTTP drain.
package main

import (
	"context"
	"errors"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/iese-repro/tauw/internal/augment"
	"github.com/iese-repro/tauw/internal/simplex"
	"github.com/iese-repro/tauw/internal/wire"
)

// startWire attaches a binary listener to srv on a loopback port and
// returns its address; the listener drains on test cleanup.
func startWire(t *testing.T, srv *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ServeWire(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.ShutdownWire(ctx); err != nil {
			t.Errorf("ShutdownWire: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("ServeWire: %v", err)
		}
	})
	return ln.Addr().String()
}

func dialWire(t *testing.T, addr string) *wire.Client {
	t.Helper()
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestWireHTTPDifferential drives identical traffic — series opens, every
// step of the study's test series, immediate ground-truth feedback, series
// closes — through a wire server and an HTTP server built from the same
// study, and requires the results to be identical down to the float bits:
// every step response field, every feedback join, and the final calibration
// monitor state. The two transports share one implementation behind the
// codec boundary, so any divergence is a wiring bug, not noise.
func TestWireHTTPDifferential(t *testing.T) {
	testServer(t) // build the shared study fixture
	st := studyVal

	newSrv := func() *Server {
		srv, err := NewServer(st.Base, st.TAQIM, simplex.DefaultTSRPolicy())
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	wireSrv := newSrv()
	httpSrv := newSrv()
	wc := dialWire(t, startWire(t, wireSrv))
	ts := httptest.NewServer(httpSrv.Handler())
	t.Cleanup(ts.Close)

	names := augment.Names()
	var wres wire.StepResult
	var wfb wire.FeedbackResult
	for si, s := range st.TestSeries {
		if si >= 12 {
			break // a dozen series exercise every shard without a slow test
		}
		wid, err := wc.OpenSeries()
		if err != nil {
			t.Fatal(err)
		}
		hid := newSeries(t, ts)
		// Both pools mint ids from the same deterministic counter; the
		// monitor state comparison below needs the same series→shard map.
		if wid != hid {
			t.Fatalf("series %d: wire id %q, http id %q", si, wid, hid)
		}
		for j := range s.Outcomes {
			q := s.Quality[j]
			if err := wc.Step(wid, s.Outcomes[j], q, &wres); err != nil {
				t.Fatalf("series %d step %d (wire): %v", si, j, err)
			}
			qm := make(map[string]float64, len(names))
			for k, name := range names {
				qm[name] = q[k]
			}
			resp := postJSON(t, ts.URL+"/v1/step", stepRequest{
				SeriesID: hid, Outcome: s.Outcomes[j], Quality: qm, PixelSize: q[len(q)-1],
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("series %d step %d (http) = %d", si, j, resp.StatusCode)
			}
			hres := decode[stepResponse](t, resp)
			if wres.Fused != hres.FusedOutcome ||
				math.Float64bits(wres.Uncertainty) != math.Float64bits(hres.Uncertainty) ||
				math.Float64bits(wres.StatelessU) != math.Float64bits(hres.StatelessU) ||
				wres.SeriesLen != hres.SeriesLen || wres.TotalSteps != hres.TotalSteps ||
				wres.ModelVersion != hres.ModelVersion ||
				wres.Countermeasure != hres.Countermeasure || wres.Accepted != hres.Accepted {
				t.Fatalf("series %d step %d diverged:\nwire %+v\nhttp %+v", si, j, wres, hres)
			}

			if err := wc.Feedback(wid, wres.TotalSteps, s.Truth, &wfb); err != nil {
				t.Fatalf("series %d step %d feedback (wire): %v", si, j, err)
			}
			fresp := postJSON(t, ts.URL+"/v1/feedback", feedbackWire{
				SeriesID: hid, Step: hres.TotalSteps, Truth: s.Truth,
			})
			if fresp.StatusCode != http.StatusOK {
				t.Fatalf("series %d step %d feedback (http) = %d", si, j, fresp.StatusCode)
			}
			hfb := decode[feedbackResponse](t, fresp)
			if wfb.Step != hfb.Step || wfb.Correct != hfb.Correct ||
				wfb.FusedOutcome != hfb.FusedOutcome ||
				math.Float64bits(wfb.Uncertainty) != math.Float64bits(hfb.Uncertainty) ||
				wfb.TAQIMLeaf != hfb.TAQIMLeaf || wfb.ModelVersion != hfb.ModelVersion ||
				wfb.DriftAlarm != hfb.DriftAlarm {
				t.Fatalf("series %d step %d feedback diverged:\nwire %+v\nhttp %+v", si, j, wfb, hfb)
			}
		}
		if err := wc.CloseSeries(wid); err != nil {
			t.Fatal(err)
		}
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/series/"+hid, nil)
		dresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		dresp.Body.Close()
	}

	// The aggregate monitor state must coincide bit-exactly too: same joins
	// in the same per-shard order on both sides.
	won := wireSrv.Calibration().Snapshot()
	hon := httpSrv.Calibration().Snapshot()
	if won.Feedbacks != hon.Feedbacks || won.Correct != hon.Correct {
		t.Errorf("feedback counts: wire %d/%d, http %d/%d", won.Feedbacks, won.Correct, hon.Feedbacks, hon.Correct)
	}
	if won.Brier != hon.Brier || won.WindowedBrier != hon.WindowedBrier || won.WindowCount != hon.WindowCount {
		t.Errorf("Brier state: wire %.17g/%.17g/%d, http %.17g/%.17g/%d",
			won.Brier, won.WindowedBrier, won.WindowCount, hon.Brier, hon.WindowedBrier, hon.WindowCount)
	}
	if won.ECE != hon.ECE {
		t.Errorf("ECE: wire %.17g, http %.17g", won.ECE, hon.ECE)
	}
	if len(won.Bins) != len(hon.Bins) {
		t.Fatalf("bin counts differ: %d vs %d", len(won.Bins), len(hon.Bins))
	}
	for b := range won.Bins {
		if won.Bins[b] != hon.Bins[b] {
			t.Errorf("bin %d: wire %+v, http %+v", b, won.Bins[b], hon.Bins[b])
		}
	}
}

// wantWireError asserts err is a *wire.Error with the given status and
// message substring.
func wantWireError(t *testing.T, err error, status int, msgPart string) {
	t.Helper()
	var werr *wire.Error
	if !errors.As(err, &werr) {
		t.Fatalf("error %T %v, want *wire.Error", err, err)
	}
	if werr.Status != status {
		t.Fatalf("status %d (%q), want %d", werr.Status, werr.Msg, status)
	}
	if !strings.Contains(werr.Msg, msgPart) {
		t.Fatalf("message %q, want it to mention %q", werr.Msg, msgPart)
	}
}

// TestWireErrorStatuses pins each failure condition to the status code the
// HTTP endpoint answers for the same condition.
func TestWireErrorStatuses(t *testing.T) {
	testServer(t)
	srv, err := NewServer(studyVal.Base, studyVal.TAQIM, simplex.DefaultTSRPolicy())
	if err != nil {
		t.Fatal(err)
	}
	c := dialWire(t, startWire(t, srv))

	quality := validQuality()
	var res wire.StepResult
	var fb wire.FeedbackResult

	wantWireError(t, c.Step("ghost", 1, quality, &res), wire.StatusNotFound, `unknown series "ghost"`)
	wantWireError(t, c.CloseSeries("ghost"), wire.StatusNotFound, `unknown series "ghost"`)
	wantWireError(t, c.Feedback("ghost", 1, 1, &fb), wire.StatusNotFound, `unknown series "ghost"`)

	id, err := c.OpenSeries()
	if err != nil {
		t.Fatal(err)
	}
	// Wrong factor count and out-of-range factors are per-request 400s.
	wantWireError(t, c.Step(id, 1, quality[:2], &res), wire.StatusBadRequest, "quality factors")
	bad := append([]float64(nil), quality...)
	bad[0] = 1.5
	wantWireError(t, c.Step(id, 1, bad, &res), wire.StatusBadRequest, "outside [0,1]")
	bad[0] = 0
	bad[len(bad)-1] = -1
	wantWireError(t, c.Step(id, 1, bad, &res), wire.StatusBadRequest, "pixel_size must be positive")

	// Feedback join conditions: 410 for a step never served, 409 for a
	// duplicate report.
	if err := c.Step(id, 7, quality, &res); err != nil {
		t.Fatal(err)
	}
	wantWireError(t, c.Feedback(id, res.TotalSteps+100, 7, &fb), wire.StatusGone, "")
	if err := c.Feedback(id, res.TotalSteps, 7, &fb); err != nil {
		t.Fatal(err)
	}
	wantWireError(t, c.Feedback(id, res.TotalSteps, 7, &fb), wire.StatusConflict, "")
	if err := c.CloseSeries(id); err != nil {
		t.Fatal(err)
	}
}

// TestWireFeedbackDisabled pins the 501 a feedback frame answers on a
// server running without provenance rings, matching POST /v1/feedback.
func TestWireFeedbackDisabled(t *testing.T) {
	testServer(t)
	srv, err := NewServer(studyVal.Base, studyVal.TAQIM, simplex.DefaultTSRPolicy(), WithFeedbackRing(0))
	if err != nil {
		t.Fatal(err)
	}
	c := dialWire(t, startWire(t, srv))
	id, err := c.OpenSeries()
	if err != nil {
		t.Fatal(err)
	}
	var res wire.StepResult
	if err := c.Step(id, 1, validQuality(), &res); err != nil {
		t.Fatal(err)
	}
	var fb wire.FeedbackResult
	wantWireError(t, c.Feedback(id, res.TotalSteps, 1, &fb), wire.StatusNotImplemented, "")
}

// TestWireBatchPerItemStatuses mixes valid, unknown-series, and malformed
// items in one batch frame: items fail individually with the single-step
// status, never the batch as a whole.
func TestWireBatchPerItemStatuses(t *testing.T) {
	testServer(t)
	srv, err := NewServer(studyVal.Base, studyVal.TAQIM, simplex.DefaultTSRPolicy())
	if err != nil {
		t.Fatal(err)
	}
	c := dialWire(t, startWire(t, srv))
	id, err := c.OpenSeries()
	if err != nil {
		t.Fatal(err)
	}
	quality := validQuality()
	bad := append([]float64(nil), quality...)
	bad[1] = 2

	items := []wire.StepRequest{
		{SeriesID: id, Outcome: 14, Quality: quality},
		{SeriesID: "ghost", Outcome: 1, Quality: quality},
		{SeriesID: id, Outcome: 3, Quality: bad},
		{SeriesID: id, Outcome: 14, Quality: quality},
	}
	out := make([]wire.BatchItemResult, len(items))
	if err := c.StepBatch(items, out); err != nil {
		t.Fatal(err)
	}
	if out[0].Status != wire.StatusOK || out[0].Step.Fused != 14 || out[0].Step.SeriesLen != 1 {
		t.Fatalf("item 0 = %+v", out[0])
	}
	if out[1].Status != wire.StatusNotFound || !strings.Contains(out[1].Err, `unknown series "ghost"`) {
		t.Fatalf("item 1 = %+v", out[1])
	}
	if out[2].Status != wire.StatusBadRequest || !strings.Contains(out[2].Err, "outside [0,1]") {
		t.Fatalf("item 2 = %+v", out[2])
	}
	if out[3].Status != wire.StatusOK || out[3].Step.SeriesLen != 2 {
		t.Fatalf("item 3 = %+v", out[3])
	}
	if out[0].Step.Countermeasure == "" {
		t.Fatal("item 0 missing countermeasure")
	}
}

// TestWireProtocolViolations talks raw frames: an unknown frame type gets a
// 400 error frame; a version mismatch kills the connection.
func TestWireProtocolViolations(t *testing.T) {
	testServer(t)
	srv, err := NewServer(studyVal.Base, studyVal.TAQIM, simplex.DefaultTSRPolicy())
	if err != nil {
		t.Fatal(err)
	}
	addr := startWire(t, srv)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf, lenOff := wire.BeginFrame(nil, 0x42, 9)
	buf = wire.EndFrame(buf, lenOff)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	fr := wire.NewReader(conn, nil)
	f, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.FrameError || f.ReqID != 9 {
		t.Fatalf("frame type %#x reqID %d", f.Type, f.ReqID)
	}
	status, msg, err := wire.DecodeErrorPayload(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if status != wire.StatusBadRequest || !strings.Contains(msg, "unknown frame type") {
		t.Fatalf("error %d %q", status, msg)
	}

	// A wrong version byte is unrecoverable: the server drops the
	// connection instead of answering.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	raw := []byte{8, 0, 0, 0, 99, wire.FrameHello, 0, 0, 0, 0, 0, 0}
	if _, err := conn2.Write(raw); err != nil {
		t.Fatal(err)
	}
	conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	var one [1]byte
	if _, err := conn2.Read(one[:]); err == nil {
		t.Fatal("server answered a wrong-version frame")
	}
}

// TestWireDrain covers ShutdownWire: idle connections unblock immediately
// (the read deadline, not the ctx timeout), callers racing the drain either
// complete or fail with a connection error, and the listener refuses new
// connections afterwards.
func TestWireDrain(t *testing.T) {
	testServer(t)
	srv, err := NewServer(studyVal.Base, studyVal.TAQIM, simplex.DefaultTSRPolicy())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ServeWire(ln) }()
	addr := ln.Addr().String()

	idle := dialWire(t, addr)
	active := dialWire(t, addr)
	id, err := active.OpenSeries()
	if err != nil {
		t.Fatal(err)
	}
	quality := validQuality()

	// Callers hammer the active connection while the drain fires: every
	// call must resolve (success before the cut, connection error after),
	// never hang.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var res wire.StepResult
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := active.Step(id, 1, quality, &res); err != nil {
					return // the drain cut the connection mid-burst
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.ShutdownWire(ctx); err != nil {
		t.Fatalf("ShutdownWire: %v", err)
	}
	if since := time.Since(start); since > 3*time.Second {
		t.Fatalf("drain of mostly-idle connections took %v", since)
	}
	close(stop)
	wg.Wait()
	if err := <-serveErr; err != nil {
		t.Fatalf("ServeWire after drain: %v", err)
	}

	// The idle connection was unblocked and closed by the drain: its next
	// call must fail rather than hang.
	var res wire.StepResult
	if err := idle.Step(id, 1, quality, &res); err == nil {
		t.Fatal("step over a drained connection succeeded")
	}
	if _, err := wire.Dial(addr); err == nil {
		t.Fatal("dial succeeded after drain closed the listener")
	}
}

// validQuality is a clean positional factor vector: all deficit channels
// zero, pixel size 200.
func validQuality() []float64 {
	q := make([]float64, len(augment.Names())+1)
	q[len(q)-1] = 200
	return q
}
