// wire.go is the binary-transport face of the server: a TCP listener
// speaking the internal/wire frame protocol alongside the HTTP endpoints.
// Each connection gets one goroutine and one pooled scratch; requests
// pipeline (the client needn't wait for a response before sending the next
// frame) and responses coalesce — the handler flushes only when the reader
// has no buffered frame left or the output buffer is already large, so a
// pipelined burst costs one write syscall, not one per frame.
//
// Semantics are shared with the JSON endpoints by construction: the wire
// dispatch calls the same gateResult / joinFeedback helpers and the same
// pool entry points the HTTP handlers use, and maps errors to the same
// status codes. The differential test in wire_test.go pins the equivalence.
package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/iese-repro/tauw/internal/core"
	"github.com/iese-repro/tauw/internal/wire"
	"github.com/iese-repro/tauw/internal/xslice"
)

// wireFlushThreshold flushes the response buffer early even while more
// requests are buffered, bounding per-connection memory under a deep
// pipeline of batch frames.
const wireFlushThreshold = 64 << 10

// wireServer is the binary listener's state: the tracked connections for
// drain, and the per-connection-constant hello payload and countermeasure
// index derived from the gate policy.
type wireServer struct {
	srv *Server
	ln  net.Listener

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	draining bool
	wg       sync.WaitGroup

	// hello is the precomputed hello response payload; levelIdx maps a
	// countermeasure name to its index in that table (how step responses
	// name the selected level in one byte).
	hello    []byte
	levelIdx map[string]uint8
}

func newWireServer(s *Server, ln net.Listener) (*wireServer, error) {
	policy := s.gate.Policy()
	levels := make([]string, 0, len(policy.Levels)+1)
	for _, l := range policy.Levels {
		levels = append(levels, l.Name)
	}
	levels = append(levels, policy.Terminal.Name)
	hello, err := wire.AppendHelloPayload(nil, &wire.Hello{Levels: levels})
	if err != nil {
		return nil, err
	}
	idx := make(map[string]uint8, len(levels))
	for i, name := range levels {
		idx[name] = uint8(i)
	}
	return &wireServer{
		srv:      s,
		ln:       ln,
		conns:    make(map[net.Conn]struct{}),
		hello:    hello,
		levelIdx: idx,
	}, nil
}

// ServeWire accepts binary-transport connections on ln until the listener
// closes (ShutdownWire during drain returns nil; any other accept failure
// is returned). At most one wire listener may be active per server.
func (s *Server) ServeWire(ln net.Listener) error {
	ws, err := newWireServer(s, ln)
	if err != nil {
		return err
	}
	s.wireMu.Lock()
	if s.wire != nil {
		s.wireMu.Unlock()
		return errors.New("tauserve: wire listener already active")
	}
	s.wire = ws
	s.wireMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ws.isDraining() {
				return nil
			}
			return err
		}
		if !ws.track(conn) {
			conn.Close()
			continue
		}
		go ws.handleConn(conn)
	}
}

// ShutdownWire drains the binary listener: stop accepting, unblock every
// idle connection via an immediate read deadline (frames already received
// still complete and their responses flush), and wait for the handlers up
// to ctx's deadline, force-closing stragglers after it. A server without a
// wire listener returns immediately.
func (s *Server) ShutdownWire(ctx context.Context) error {
	s.wireMu.Lock()
	ws := s.wire
	s.wireMu.Unlock()
	if ws == nil {
		return nil
	}
	ws.mu.Lock()
	ws.draining = true
	for conn := range ws.conns {
		conn.SetReadDeadline(time.Now())
	}
	ws.mu.Unlock()
	ws.ln.Close()
	done := make(chan struct{})
	go func() {
		ws.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		ws.mu.Lock()
		for conn := range ws.conns {
			conn.Close()
		}
		ws.mu.Unlock()
		return fmt.Errorf("wire drain incomplete: %w", ctx.Err())
	}
}

// track registers a connection (and its wg slot) unless the server is
// draining; registration and the drain flag share one critical section so
// a connection can never slip in after the drain walked the map.
func (ws *wireServer) track(conn net.Conn) bool {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.draining {
		return false
	}
	ws.conns[conn] = struct{}{}
	ws.wg.Add(1)
	return true
}

func (ws *wireServer) forget(conn net.Conn) {
	ws.mu.Lock()
	delete(ws.conns, conn)
	ws.mu.Unlock()
}

func (ws *wireServer) isDraining() bool {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.draining
}

// wireScratch is one connection's reusable state: the frame reader's
// buffer, the response buffer, the batch dispatch arrays, and the quality
// slab. Checked out once per connection, not per frame.
type wireScratch struct {
	rbuf    []byte
	out     []byte
	steps   []wireStep
	items   []core.SeriesStepItem
	back    []int32
	results []core.BatchResult
	bodies  []stepResponse
	status  []uint16

	// slab backs decoded quality vectors exactly like the JSON decoder's
	// (codec.go): the wrapper buffers retain each vector, so chunks are
	// carved, never recycled — allocation amortises to one make per
	// maxSlabChunkItems frames.
	slab      []float64
	nextChunk int
}

var wireScratchPool = sync.Pool{New: func() any {
	return &wireScratch{rbuf: make([]byte, 4096), out: make([]byte, 0, 4096), nextChunk: 1}
}}

func (sc *wireScratch) release() {
	for i := range sc.steps {
		sc.steps[i] = wireStep{}
	}
	sc.steps = sc.steps[:0]
	for i := range sc.items {
		sc.items[i] = core.SeriesStepItem{}
	}
	sc.items = sc.items[:0]
	sc.back = sc.back[:0]
	for i := range sc.results {
		sc.results[i] = core.BatchResult{}
	}
	sc.results = sc.results[:0]
	for i := range sc.bodies {
		sc.bodies[i] = stepResponse{}
	}
	sc.bodies = sc.bodies[:0]
	sc.status = sc.status[:0]
	sc.out = sc.out[:0]
	wireScratchPool.Put(sc)
}

// qfVector carves the next quality vector out of the connection's slab
// (same geometric-chunk discipline as the JSON decoder's qfVector).
func (sc *wireScratch) qfVector() []float64 {
	width := len(qualityIndex) + 1
	if len(sc.slab) < width {
		n := sc.nextChunk
		if n < 1 {
			n = 1
		}
		if n > maxSlabChunkItems {
			n = maxSlabChunkItems
		}
		sc.slab = make([]float64, width*n)
		sc.nextChunk = n * 8
	}
	qf := sc.slab[:width:width]
	sc.slab = sc.slab[width:]
	return qf
}

// handleConn is one connection's frame loop.
func (ws *wireServer) handleConn(conn net.Conn) {
	defer ws.wg.Done()
	defer ws.forget(conn)
	defer conn.Close()
	sc := wireScratchPool.Get().(*wireScratch)
	fr := wire.NewReader(conn, sc.rbuf)
	out := sc.out[:0]
	for {
		f, err := fr.Next()
		if err != nil {
			// EOF, the drain deadline, or a framing violation: flush what
			// is pending and drop the connection (past a framing error the
			// stream cannot be trusted, and a draining peer gets its
			// completed responses either way).
			if len(out) > 0 {
				conn.Write(out)
			}
			break
		}
		out = ws.dispatch(&f, out, sc)
		if len(out) > 0 && (fr.Buffered() == 0 || len(out) >= wireFlushThreshold) {
			if _, err := conn.Write(out); err != nil {
				break
			}
			out = out[:0]
		}
	}
	sc.rbuf = fr.Buffer()
	sc.out = out
	sc.release()
}

// appendWireError renders a FrameError response.
func appendWireError(out []byte, reqID uint32, status int, msg string) []byte {
	out, lenOff := wire.BeginFrame(out, wire.FrameError, reqID)
	out = wire.AppendErrorPayload(out, status, msg)
	return wire.EndFrame(out, lenOff)
}

// dispatch handles one request frame, appending the response to out.
func (ws *wireServer) dispatch(f *wire.Frame, out []byte, sc *wireScratch) []byte {
	switch f.Type {
	case wire.FrameHello:
		resp, lenOff := wire.BeginFrame(out, wire.ResponseType(wire.FrameHello), f.ReqID)
		resp = append(resp, ws.hello...)
		return wire.EndFrame(resp, lenOff)
	case wire.FrameOpenSeries:
		return ws.dispatchOpenSeries(f, out)
	case wire.FrameStep:
		return ws.dispatchStep(f, out, sc)
	case wire.FrameStepBatch:
		return ws.dispatchStepBatch(f, out, sc)
	case wire.FrameFeedback:
		return ws.dispatchFeedback(f, out)
	case wire.FrameCloseSeries:
		return ws.dispatchCloseSeries(f, out)
	default:
		return appendWireError(out, f.ReqID, wire.StatusBadRequest,
			fmt.Sprintf("unknown frame type %#x", f.Type))
	}
}

func (ws *wireServer) dispatchOpenSeries(f *wire.Frame, out []byte) []byte {
	id, err := ws.srv.pool.OpenSeries()
	if err != nil {
		status := wire.StatusInternal
		if errors.Is(err, core.ErrTrackBudget) {
			status = wire.StatusUnavailable
		}
		return appendWireError(out, f.ReqID, status, err.Error())
	}
	resp, lenOff := wire.BeginFrame(out, wire.ResponseType(wire.FrameOpenSeries), f.ReqID)
	resp = wire.AppendSeriesIDPayload(resp, id)
	return wire.EndFrame(resp, lenOff)
}

func (ws *wireServer) dispatchCloseSeries(f *wire.Frame, out []byte) []byte {
	idBytes, err := wire.DecodeSeriesIDPayload(f.Payload)
	if err != nil {
		return appendWireError(out, f.ReqID, wire.StatusBadRequest, err.Error())
	}
	id := bytesToString(idBytes)
	if err := ws.srv.pool.CloseSeries(id); err != nil {
		if errors.Is(err, core.ErrUnknownSeries) || errors.Is(err, core.ErrUnknownTrack) {
			return appendWireError(out, f.ReqID, wire.StatusNotFound, fmt.Sprintf("unknown series %q", id))
		}
		return appendWireError(out, f.ReqID, wire.StatusInternal, err.Error())
	}
	resp, lenOff := wire.BeginFrame(out, wire.ResponseType(wire.FrameCloseSeries), f.ReqID)
	return wire.EndFrame(resp, lenOff)
}

// decodeWireStepItem validates one decoded item view into a wireStep with
// the JSON path's semantics: the factor count must match the channel set
// plus pixel size, deficits live in [0,1], pixel size must be positive.
// Semantic violations land in itemErr (per-item failure), mirroring the
// JSON decoder's split between syntax and semantic errors.
func (sc *wireScratch) decodeWireStepItem(v *wire.StepItemView, out *wireStep) {
	*out = wireStep{seriesID: bytesToString(v.SeriesID), outcome: v.Outcome}
	want := len(qualityNames) + 1
	if v.NumQuality() != want {
		out.itemErr = fmt.Errorf("expected %d quality factors (deficit channels plus pixel size), got %d",
			want, v.NumQuality())
		return
	}
	qf := sc.qfVector()
	for i := 0; i < want; i++ {
		qf[i] = v.QualityAt(i)
	}
	for i, val := range qf[:len(qualityNames)] {
		// Negated so NaN (which satisfies no comparison) is rejected too.
		if !(val >= 0 && val <= 1) {
			out.itemErr = fmt.Errorf("quality factor %q = %g outside [0,1]", qualityNames[i], val)
			return
		}
	}
	if pixel := qf[want-1]; !(pixel > 0) {
		out.itemErr = fmt.Errorf("pixel_size must be positive, got %g", pixel)
		return
	}
	out.qf = qf
}

func (ws *wireServer) dispatchStep(f *wire.Frame, out []byte, sc *wireScratch) []byte {
	start := time.Now()
	defer func() { ws.srv.latStep.Observe(time.Since(start)) }()
	v, rest, err := wire.DecodeStepItemView(f.Payload)
	if err != nil || len(rest) != 0 {
		return appendWireError(out, f.ReqID, wire.StatusBadRequest, "malformed step payload")
	}
	var step wireStep
	sc.decodeWireStepItem(&v, &step)
	if step.itemErr != nil {
		return appendWireError(out, f.ReqID, wire.StatusBadRequest, step.itemErr.Error())
	}
	res, err := ws.srv.pool.StepSeries(step.seriesID, step.outcome, step.qf)
	if err != nil {
		if errors.Is(err, core.ErrUnknownSeries) || errors.Is(err, core.ErrUnknownTrack) {
			return appendWireError(out, f.ReqID, wire.StatusNotFound,
				fmt.Sprintf("unknown series %q", step.seriesID))
		}
		return appendWireError(out, f.ReqID, wire.StatusInternal, err.Error())
	}
	resp, err := ws.srv.gateResult(step.seriesID, res)
	if err != nil {
		return appendWireError(out, f.ReqID, wire.StatusInternal, err.Error())
	}
	frame, lenOff := wire.BeginFrame(out, wire.ResponseType(wire.FrameStep), f.ReqID)
	frame = ws.appendStepResult(frame, &resp)
	return wire.EndFrame(frame, lenOff)
}

// appendStepResult renders the shared stepResponse shape as a wire step
// result, resolving the countermeasure to its hello-table index.
func (ws *wireServer) appendStepResult(dst []byte, r *stepResponse) []byte {
	res := wire.StepResult{
		Fused:        r.FusedOutcome,
		Uncertainty:  r.Uncertainty,
		StatelessU:   r.StatelessU,
		SeriesLen:    r.SeriesLen,
		TotalSteps:   r.TotalSteps,
		ModelVersion: r.ModelVersion,
		Accepted:     r.Accepted,
	}
	return wire.AppendStepResultPayload(dst, &res, ws.levelIdx[r.Countermeasure])
}

func (ws *wireServer) dispatchStepBatch(f *wire.Frame, out []byte, sc *wireScratch) []byte {
	start := time.Now()
	defer func() { ws.srv.latBatch.Observe(time.Since(start)) }()
	n, p, err := wire.DecodeBatchHeader(f.Payload)
	if err != nil {
		return appendWireError(out, f.ReqID, wire.StatusBadRequest, err.Error())
	}
	if n == 0 {
		return appendWireError(out, f.ReqID, wire.StatusBadRequest, "empty batch")
	}
	sc.steps = sc.steps[:0]
	for i := 0; i < n; i++ {
		var v wire.StepItemView
		if v, p, err = wire.DecodeStepItemView(p); err != nil {
			return appendWireError(out, f.ReqID, wire.StatusBadRequest, "malformed batch payload")
		}
		var step wireStep
		sc.decodeWireStepItem(&v, &step)
		sc.steps = append(sc.steps, step)
	}
	if len(p) != 0 {
		return appendWireError(out, f.ReqID, wire.StatusBadRequest, "malformed batch payload")
	}

	// From here the flow is the JSON batch handler's: route valid items to
	// the pool batch, scatter per-item results by the back index, one
	// status per item.
	sc.items = sc.items[:0]
	sc.back = sc.back[:0]
	sc.bodies = xslice.Grow(sc.bodies, n)
	sc.status = xslice.Grow(sc.status, n)
	for i := range sc.steps {
		st := &sc.steps[i]
		if st.itemErr != nil {
			sc.status[i] = wire.StatusBadRequest
			continue
		}
		sc.status[i] = 0 // resolved by the scatter pass below
		sc.items = append(sc.items, core.SeriesStepItem{
			SeriesID: st.seriesID,
			Outcome:  st.outcome,
			Quality:  st.qf,
		})
		sc.back = append(sc.back, int32(i))
	}
	sc.results = ws.srv.pool.StepBatchSeriesInto(sc.items, ws.srv.batchWorkers, sc.results)
	for j := range sc.results {
		br := &sc.results[j]
		i := sc.back[j]
		switch {
		case br.Err == nil:
			resp, gerr := ws.srv.gateResult(sc.steps[i].seriesID, br.Result)
			if gerr != nil {
				sc.status[i] = wire.StatusInternal
				sc.steps[i].itemErr = gerr
				continue
			}
			sc.status[i] = wire.StatusOK
			sc.bodies[i] = resp
		case errors.Is(br.Err, core.ErrUnknownSeries), errors.Is(br.Err, core.ErrUnknownTrack):
			sc.status[i] = wire.StatusNotFound
			sc.steps[i].itemErr = fmt.Errorf("unknown series %q", sc.steps[i].seriesID)
		default:
			sc.status[i] = wire.StatusInternal
			sc.steps[i].itemErr = br.Err
		}
	}

	frame, lenOff := wire.BeginFrame(out, wire.ResponseType(wire.FrameStepBatch), f.ReqID)
	frame, err = wire.AppendBatchHeader(frame, n)
	if err != nil {
		return appendWireError(frame[:lenOff], f.ReqID, wire.StatusInternal, err.Error())
	}
	for i := range sc.steps {
		if sc.status[i] == wire.StatusOK {
			frame = wire.AppendBatchItemStatus(frame, wire.StatusOK)
			frame = ws.appendStepResult(frame, &sc.bodies[i])
			continue
		}
		frame = wire.AppendBatchItemResult(frame, int(sc.status[i]), nil, 0, sc.steps[i].itemErr.Error())
	}
	return wire.EndFrame(frame, lenOff)
}

func (ws *wireServer) dispatchFeedback(f *wire.Frame, out []byte) []byte {
	start := time.Now()
	defer func() { ws.srv.latFeedback.Observe(time.Since(start)) }()
	idBytes, step, truth, err := wire.DecodeFeedbackRequestPayload(f.Payload)
	if err != nil {
		return appendWireError(out, f.ReqID, wire.StatusBadRequest, "malformed feedback payload")
	}
	resp, status, err := ws.srv.joinFeedback(bytesToString(idBytes), step, truth)
	if err != nil {
		return appendWireError(out, f.ReqID, status, err.Error())
	}
	res := wire.FeedbackResult{
		Step:         resp.Step,
		Correct:      resp.Correct,
		FusedOutcome: resp.FusedOutcome,
		Uncertainty:  resp.Uncertainty,
		TAQIMLeaf:    resp.TAQIMLeaf,
		ModelVersion: resp.ModelVersion,
		DriftAlarm:   resp.DriftAlarm,
	}
	frame, lenOff := wire.BeginFrame(out, wire.ResponseType(wire.FrameFeedback), f.ReqID)
	frame = wire.AppendFeedbackResultPayload(frame, &res)
	return wire.EndFrame(frame, lenOff)
}
