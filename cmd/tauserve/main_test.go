// main_test.go covers startup flag validation: every flag whose runtime
// behavior would be undefined (negative intervals panic time.NewTicker, a
// zero WAL cap reads as "no limit" but means "default") must fail fast with
// an error naming the flag.
package main

import (
	"strings"
	"testing"
	"time"
)

// validFlags is a baseline that passes validation; each case perturbs one
// field.
func validFlags() serveFlagValues {
	return serveFlagValues{
		flushInterval:      time.Second,
		checkpointInterval: time.Minute,
		walMaxBytes:        1 << 20,
		storeRetryAttempts: 3,
		storeRetryBase:     10 * time.Millisecond,
		breakerProbe:       5 * time.Second,
		readTimeout:        time.Minute,
		writeTimeout:       time.Minute,
		drainTimeout:       10 * time.Second,
	}
}

func TestValidateServeFlags(t *testing.T) {
	if err := validateServeFlags(validFlags()); err != nil {
		t.Fatalf("baseline flags rejected: %v", err)
	}
	cases := []struct {
		name     string
		mutate   func(*serveFlagValues)
		wantFlag string
	}{
		{"negative flush interval", func(v *serveFlagValues) { v.flushInterval = -time.Second }, "-flush-interval"},
		{"negative checkpoint interval", func(v *serveFlagValues) { v.checkpointInterval = -time.Minute }, "-checkpoint-interval"},
		{"zero wal max bytes", func(v *serveFlagValues) { v.walMaxBytes = 0 }, "-wal-max-bytes"},
		{"negative retry attempts", func(v *serveFlagValues) { v.storeRetryAttempts = -1 }, "-store-retry-attempts"},
		{"negative retry base", func(v *serveFlagValues) { v.storeRetryBase = -time.Millisecond }, "-store-retry-base"},
		{"negative breaker probe", func(v *serveFlagValues) { v.breakerProbe = -time.Second }, "-breaker-probe"},
		{"negative max inflight", func(v *serveFlagValues) { v.maxInflight = -1 }, "-max-inflight"},
		{"negative admission queue", func(v *serveFlagValues) { v.admissionQueue = -1 }, "-admission-queue"},
		{"negative request timeout", func(v *serveFlagValues) { v.requestTimeout = -time.Second }, "-request-timeout"},
		{"negative read timeout", func(v *serveFlagValues) { v.readTimeout = -time.Second }, "-read-timeout"},
		{"negative write timeout", func(v *serveFlagValues) { v.writeTimeout = -time.Second }, "-write-timeout"},
		{"negative drain timeout", func(v *serveFlagValues) { v.drainTimeout = -time.Second }, "-drain-timeout"},
		{"negative drain grace", func(v *serveFlagValues) { v.drainGrace = -time.Second }, "-drain-grace"},
		{"fault inject without state dir", func(v *serveFlagValues) { v.faultInject = true }, "-fault-inject"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := validFlags()
			tc.mutate(&v)
			err := validateServeFlags(v)
			if err == nil {
				t.Fatal("invalid flags accepted")
			}
			if !strings.Contains(err.Error(), tc.wantFlag) {
				t.Fatalf("error %q does not name %s", err, tc.wantFlag)
			}
		})
	}
	// Negative wal-max-bytes and fault-inject with a state dir are valid.
	v := validFlags()
	v.walMaxBytes = -1
	v.faultInject = true
	v.stateDir = "/tmp/state"
	if err := validateServeFlags(v); err != nil {
		t.Fatalf("valid configuration rejected: %v", err)
	}
}
