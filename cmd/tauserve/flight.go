// flight.go is the flight recorder's HTTP surface: GET /debug/flight dumps
// the recorder's live rings as one merged, time-ordered JSON array, and
// GET /debug/flight/last-anomaly serves the snapshot frozen at the last
// anomaly (breaker trip, drift alarm, shed storm). Both render through a
// reflection-free appender like the v1 endpoints — a dump taken while the
// server is melting down must not add allocation pressure to the meltdown —
// and reuse one server-held event buffer, so repeated dumps settle at zero
// steady-state allocations beyond the response write itself.
package main

import (
	"errors"
	"net/http"
	"strconv"

	"github.com/iese-repro/tauw/internal/trace"
)

// handleFlight renders the merged live dump. Events are sorted by
// timestamp across all ring stripes, so the array reads as the recent
// history of the whole process, newest last.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	drainBody(w, r)
	sc := getScratch()
	defer sc.release()
	s.flightMu.Lock()
	s.flightBuf = s.trace.Snapshot(s.flightBuf)
	sc.out = appendFlightDump(sc.out[:0], s.trace.Now(), s.flightBuf)
	s.flightMu.Unlock()
	writeRaw(w, http.StatusOK, sc.out, "flight")
}

// handleFlightAnomaly serves the last frozen anomaly snapshot, or 404 when
// nothing has been frozen since startup — "no anomaly yet" is an answer a
// poller can branch on, not an empty dump it must interpret.
func (s *Server) handleFlightAnomaly(w http.ResponseWriter, r *http.Request) {
	drainBody(w, r)
	sc := getScratch()
	defer sc.release()
	s.flightMu.Lock()
	info, evs := s.trace.LastAnomaly(s.anomBuf)
	s.anomBuf = evs
	if info.Seq == 0 {
		s.flightMu.Unlock()
		httpError(w, http.StatusNotFound, errors.New("no anomaly snapshot frozen yet"))
		return
	}
	sc.out = appendAnomalyDump(sc.out[:0], info, evs)
	s.flightMu.Unlock()
	writeRaw(w, http.StatusOK, sc.out, "flight")
}

// appendFlightDump renders the /debug/flight body:
//
//	{"now":<unix-ns>,"count":N,"events":[...]}
func appendFlightDump(dst []byte, now int64, events []trace.Event) []byte {
	dst = append(dst, `{"now":`...)
	dst = strconv.AppendInt(dst, now, 10)
	dst = append(dst, `,"count":`...)
	dst = strconv.AppendInt(dst, int64(len(events)), 10)
	dst = append(dst, ',')
	dst = appendFlightEvents(dst, events)
	return append(dst, '}')
}

// appendAnomalyDump renders the /debug/flight/last-anomaly body:
//
//	{"reason":"breaker_trip","at":<unix-ns>,"seq":K,"count":N,"events":[...]}
func appendAnomalyDump(dst []byte, info trace.AnomalyInfo, events []trace.Event) []byte {
	dst = append(dst, `{"reason":`...)
	dst = appendJSONString(dst, info.Reason)
	dst = append(dst, `,"at":`...)
	dst = strconv.AppendInt(dst, info.At, 10)
	dst = append(dst, `,"seq":`...)
	dst = strconv.AppendUint(dst, info.Seq, 10)
	dst = append(dst, `,"count":`...)
	dst = strconv.AppendInt(dst, int64(len(events)), 10)
	dst = append(dst, ',')
	dst = appendFlightEvents(dst, events)
	return append(dst, '}')
}

// appendFlightEvents renders `"events":[{...},...]`. Every field is an
// integer or a name from a fixed table (no escaping needed), so one event
// is a handful of strconv appends.
func appendFlightEvents(dst []byte, events []trace.Event) []byte {
	dst = append(dst, `"events":[`...)
	for i := range events {
		ev := &events[i]
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"ts":`...)
		dst = strconv.AppendInt(dst, ev.TS, 10)
		dst = append(dst, `,"kind":"`...)
		dst = append(dst, ev.Kind.Name()...)
		dst = append(dst, `","status":"`...)
		dst = append(dst, ev.Status.Name()...)
		dst = append(dst, `","shard":`...)
		dst = strconv.AppendUint(dst, uint64(ev.Shard), 10)
		// Series renders signed: server-minted series live in the negative
		// track-id space (series "sN" is track -N), and "-1" reads as s1
		// where the raw two's-complement uint64 would not.
		dst = append(dst, `,"series":`...)
		dst = strconv.AppendInt(dst, int64(ev.Series), 10)
		dst = append(dst, `,"dur_ns":`...)
		dst = strconv.AppendInt(dst, ev.Dur, 10)
		dst = append(dst, `,"arg":`...)
		dst = strconv.AppendUint(dst, ev.Arg, 10)
		dst = append(dst, '}')
	}
	return append(dst, ']')
}
