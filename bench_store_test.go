package tauw_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/iese-repro/tauw/internal/core"
	"github.com/iese-repro/tauw/internal/store"
)

// benchStorePool builds a journaled, monitored pool with every track warmed
// past one ring eviction, the steady state a checkpoint would capture in a
// long-running server.
func benchStorePool(b *testing.B) *core.WrapperPool {
	b.Helper()
	st := study(b)
	series := st.TestSeries[0]
	outcome, quality := series.Outcomes[0], series.Quality[0]
	pool, err := core.NewWrapperPool(st.Base, st.TAQIM, benchPoolCfg, 0,
		core.WithMonitoring(64), core.WithStateJournal())
	if err != nil {
		b.Fatal(err)
	}
	for id := 0; id < benchPoolTracks; id++ {
		if err := pool.Open(id); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < benchPoolCfg.BufferLimit+2; i++ {
		for id := 0; id < benchPoolTracks; id++ {
			if _, err := pool.Step(id, outcome, quality); err != nil {
				b.Fatal(err)
			}
		}
	}
	return pool
}

// BenchmarkCheckpoint prices one full checkpoint of a populated pool: the
// snapshot encode of every track plus meta and monitor records, against the
// in-memory store (pure encode cost) and the file store (encode + tmp file
// + fsync + rename). The blob size is reported so a regression in encoding
// density shows up alongside one in speed.
func BenchmarkCheckpoint(b *testing.B) {
	run := func(b *testing.B, s store.Store) {
		pool := benchStorePool(b)
		cp, err := store.NewCheckpointer(s, pool, nil, nil, store.CheckpointConfig{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cp.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(cp.CheckpointStats().LastCheckpointBytes), "bytes/checkpoint")
	}
	b.Run("mem", func(b *testing.B) { run(b, store.NewMemStore()) })
	b.Run("file", func(b *testing.B) {
		s, err := store.OpenFileStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		run(b, s)
	})
}

// BenchmarkFlush prices one incremental flush sweep with every track dirty —
// the worst case the background flusher meets between checkpoints. The mem
// store isolates the harvest+encode cost; the durability window a deployment
// can afford follows from this number times its track count fraction dirty.
func BenchmarkFlush(b *testing.B) {
	st := study(b)
	series := st.TestSeries[0]
	outcome, quality := series.Outcomes[0], series.Quality[0]
	pool := benchStorePool(b)
	cp, err := store.NewCheckpointer(store.NewMemStore(), pool, nil, nil, store.CheckpointConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Re-dirty every track; the flush itself is the timed section.
		for id := 0; id < benchPoolTracks; id++ {
			if _, err := pool.Step(id, outcome, quality); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := cp.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRestore measures cold-start recovery: replaying a full-pool
// checkpoint blob into a fresh pool, the time a restarted server spends
// before it can serve. Pool construction is excluded (it happens with or
// without durability); the timed section is exactly store.Recover.
func BenchmarkRestore(b *testing.B) {
	st := study(b)
	src := benchStorePool(b)
	s := store.NewMemStore()
	cp, err := store.NewCheckpointer(s, src, nil, nil, store.CheckpointConfig{})
	if err != nil {
		b.Fatal(err)
	}
	if err := cp.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pool, err := core.NewWrapperPool(st.Base, st.TAQIM, benchPoolCfg, 0,
			core.WithMonitoring(64), core.WithStateJournal())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := store.Recover(s, pool, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPoolStepDuringCheckpoint is BenchmarkPoolStepParallel/sharded
// with the write-behind checkpointer flushing and checkpointing as fast as
// it can on a background goroutine: the step hot path must stay
// allocation-free (the bench gate enforces 0 allocs/op) and within a few
// nanoseconds of the durability-free number — dirty marking is one bool
// store under a lock the step already holds, and the harvest happens on the
// flusher's clock, never the caller's.
func BenchmarkPoolStepDuringCheckpoint(b *testing.B) {
	st := study(b)
	series := st.TestSeries[0]
	outcome, quality := series.Outcomes[0], series.Quality[0]
	pool := benchStorePool(b)
	cp, err := store.NewCheckpointer(store.NewMemStore(), pool, nil, nil, store.CheckpointConfig{})
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%8 == 7 {
				if err := cp.Checkpoint(); err != nil {
					b.Error(err)
					return
				}
			} else if err := cp.Flush(); err != nil {
				b.Error(err)
				return
			}
			// About one flush per millisecond — already ~40× the default
			// cadence; flat-out flushing would only measure the harvester's
			// own allocations, which belong to BenchmarkFlush.
			time.Sleep(time.Millisecond)
		}
	}()

	perG := benchPoolTracks / runtime.GOMAXPROCS(0)
	if perG < 1 {
		perG = 1
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		base := (int(next.Add(1)-1) * perG) % benchPoolTracks
		i := 0
		for pb.Next() {
			i++
			if _, err := pool.Step(base+i%perG, outcome, quality); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
}

// BenchmarkPoolStepDuringStoreFault is the same hot path with the store
// failing every operation: flush cycles error and retry behind the pool, and
// steps must stay allocation-free and at full speed regardless — the fault
// isolation the degraded mode depends on. The bench gate holds this to
// 0 allocs/op alongside the healthy-store variant.
func BenchmarkPoolStepDuringStoreFault(b *testing.B) {
	st := study(b)
	series := st.TestSeries[0]
	outcome, quality := series.Outcomes[0], series.Quality[0]
	pool := benchStorePool(b)
	fs := store.NewFaultStore(store.NewMemStore())
	for op := store.Op(0); op < store.NumOps(); op++ {
		fs.FailOps(op, 0, -1, nil)
	}
	// One attempt, no backoff: the flusher fails fast and spins again, the
	// worst interference the breaker would ever let reach the store.
	cp, err := store.NewCheckpointer(fs, pool, nil, nil,
		store.CheckpointConfig{RetryAttempts: 1})
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Every cycle fails by construction; the errors are the point.
			if i%8 == 7 {
				_ = cp.Checkpoint()
			} else {
				_ = cp.Flush()
			}
			time.Sleep(time.Millisecond)
		}
	}()

	perG := benchPoolTracks / runtime.GOMAXPROCS(0)
	if perG < 1 {
		perG = 1
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		base := (int(next.Add(1)-1) * perG) % benchPoolTracks
		i := 0
		for pb.Next() {
			i++
			if _, err := pool.Step(base+i%perG, outcome, quality); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
}
